"""Training loop for throughput models.

The trainer reproduces the protocol described in Section 4 of the paper:

* batches of basic blocks (100 per batch in the paper),
* the MAPE loss by default (Table 9 sweeps alternatives),
* Adam with learning rate 1e-3,
* for multi-task models, the losses of all tasks are summed and the weights
  of all heads are updated for every block at the same time (Section 5.3),
* a validation split is evaluated periodically and the best checkpoint (by
  validation MAPE averaged over tasks) is restored at the end of training,
  mirroring "We use the validation split to select the best checkpoint
  during training".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import ThroughputDataset
from repro.isa.basic_block import BasicBlock
from repro.models.base import ThroughputModel
from repro.models.config import TrainingConfig
from repro.nn.losses import get_loss
from repro.nn.optim import Adam, clip_gradients_by_global_norm
from repro.nn.tensor import Tensor
from repro.training.metrics import RegressionMetrics, compute_metrics

__all__ = ["StepResult", "TrainingHistory", "Trainer", "evaluate_model"]


@dataclass(frozen=True)
class StepResult:
    """Loss information of one training step."""

    step: int
    loss: float
    gradient_norm: float
    seconds: float


@dataclass
class TrainingHistory:
    """Everything recorded during one training run."""

    steps: List[StepResult] = field(default_factory=list)
    validation_mape: List[Tuple[int, float]] = field(default_factory=list)
    best_step: int = -1
    best_validation_mape: float = float("inf")
    total_seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.steps[-1].loss if self.steps else float("nan")

    @property
    def steps_per_second(self) -> float:
        """Mean optimisation throughput over the recorded steps.

        Computed from the per-step wall times, so validation evaluations
        (which run between steps) do not dilute it.
        """
        seconds = sum(record.seconds for record in self.steps)
        if seconds <= 0.0:
            return 0.0
        return len(self.steps) / seconds

    def loss_curve(self) -> np.ndarray:
        """Returns the training loss at every step as an array."""
        return np.array([record.loss for record in self.steps], dtype=np.float64)

    def diverged(self, threshold: float = 1e6) -> bool:
        """True when the loss became non-finite or exploded."""
        losses = self.loss_curve()
        return bool(losses.size and (not np.all(np.isfinite(losses)) or losses[-1] > threshold))


def evaluate_model(
    model: ThroughputModel,
    dataset: ThroughputDataset,
    tasks: Optional[Sequence[str]] = None,
    batch_size: int = 256,
) -> Dict[str, RegressionMetrics]:
    """Evaluates a model on a dataset, per task.

    Args:
        model: The trained model.
        dataset: Dataset providing blocks and labels.
        tasks: Tasks to evaluate (defaults to the model's tasks).
        batch_size: Evaluation batch size (does not affect results).

    Returns:
        Mapping from task key to its :class:`RegressionMetrics`.
    """
    tasks = tuple(tasks if tasks is not None else model.tasks)
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    # The batched fast-path API micro-batches internally; repeated
    # evaluations of the same dataset (the validation loop) additionally hit
    # the model's encode caches.
    predictions = model.predict(dataset.blocks(), batch_size=batch_size)
    results: Dict[str, RegressionMetrics] = {}
    for task in tasks:
        actual = dataset.throughputs(task)
        results[task] = compute_metrics(predictions[task], actual)
    return results


class Trainer:
    """Trains a :class:`ThroughputModel` on a :class:`ThroughputDataset`."""

    def __init__(
        self,
        model: ThroughputModel,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.loss_fn = get_loss(self.config.loss)
        self.optimizer = Adam(model.parameters(), learning_rate=self.config.learning_rate)
        self.rng = np.random.default_rng(self.config.seed)
        # Per-dataset batch sources: the block list and one float64 label
        # array per task, extracted once so each step samples with a single
        # rng.choice + array indexing instead of touching Python sample
        # objects.  Keyed by id() with the dataset pinned in the value, so
        # a recycled id cannot alias a different dataset.  Bounded (FIFO)
        # so a long-lived trainer cycling through many datasets (rotating
        # subsets, cross-validation folds) cannot accumulate entries — and
        # pinned datasets — without limit.
        self._batch_sources: Dict[
            int, Tuple[ThroughputDataset, List[BasicBlock], Dict[str, np.ndarray]]
        ] = {}
        self._batch_sources_capacity = 4

    def _batch_source(
        self, dataset: ThroughputDataset
    ) -> Tuple[List[BasicBlock], Dict[str, np.ndarray]]:
        """Returns (blocks, per-task labels) of ``dataset``, cached.

        Samples without a label for a task (possible in CSV-imported
        datasets) hold ``NaN`` in that task's array; drawing one raises the
        same ``KeyError`` the per-sample path raised, while never-drawn
        unlabeled samples stay harmless as before.
        """
        entry = self._batch_sources.get(id(dataset))
        if entry is None or entry[0] is not dataset:
            labels = {}
            for task in self.model.tasks:
                key = task.lower().replace(" ", "_")
                labels[task] = np.array(
                    [sample.throughputs.get(key, np.nan) for sample in dataset.samples],
                    dtype=np.float64,
                )
            entry = (dataset, dataset.blocks(), labels)
            while len(self._batch_sources) >= self._batch_sources_capacity:
                self._batch_sources.pop(next(iter(self._batch_sources)))
            self._batch_sources[id(dataset)] = entry
        return entry[1], entry[2]

    # ------------------------------------------------------------------ #
    # Single training step.
    # ------------------------------------------------------------------ #
    def train_step(self, dataset: ThroughputDataset, step: int) -> StepResult:
        """Runs one optimisation step on a random batch from ``dataset``."""
        start_time = time.perf_counter()
        all_blocks, labels = self._batch_source(dataset)
        batch_size = min(self.config.batch_size, len(dataset))
        indices = self.rng.choice(len(dataset), size=batch_size, replace=False)
        blocks = [all_blocks[index] for index in indices]

        encoded = self.model.encode_blocks(blocks)
        predictions = self.model.forward(encoded)

        total_loss: Optional[Tensor] = None
        for task in self.model.tasks:
            values = labels[task][indices]
            missing = np.isnan(values)
            if missing.any():
                # Same error (and semantics) as the per-sample path: only a
                # *drawn* unlabeled sample is an error.
                dataset[int(indices[int(missing.argmax())])].throughput(task)
            actual = Tensor(values)
            task_loss = self.loss_fn(predictions[task], actual)
            total_loss = task_loss if total_loss is None else total_loss + task_loss

        self.model.zero_grad()
        total_loss.backward()
        if self.config.gradient_clip_norm > 0:
            gradient_norm = clip_gradients_by_global_norm(
                self.model.parameters(), self.config.gradient_clip_norm
            )
        else:
            gradient_norm = float("nan")
        self.optimizer.step()
        elapsed = time.perf_counter() - start_time
        return StepResult(
            step=step,
            loss=float(total_loss.item()) / max(len(self.model.tasks), 1),
            gradient_norm=gradient_norm,
            seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Full training loop.
    # ------------------------------------------------------------------ #
    def train(
        self,
        train_dataset: ThroughputDataset,
        validation_dataset: Optional[ThroughputDataset] = None,
        num_steps: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Trains for ``num_steps`` steps and restores the best checkpoint.

        Args:
            train_dataset: Training samples.
            validation_dataset: Optional validation samples used to select
                the best checkpoint (paper protocol).  When omitted, the
                final parameters are kept.
            num_steps: Overrides ``config.num_steps`` when given.
            verbose: Print progress lines.

        Returns:
            The :class:`TrainingHistory` of the run.
        """
        if len(train_dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        steps = num_steps if num_steps is not None else self.config.num_steps
        history = TrainingHistory()
        best_state: Optional[Dict[str, np.ndarray]] = None
        start_time = time.perf_counter()

        for step in range(1, steps + 1):
            result = self.train_step(train_dataset, step)
            history.steps.append(result)
            if verbose and (step % max(1, steps // 10) == 0 or step == 1):
                print(f"step {step:5d}  loss {result.loss:.4f}  ({result.seconds * 1000:.1f} ms)")

            should_validate = (
                validation_dataset is not None
                and len(validation_dataset) > 0
                and (step % self.config.validation_interval == 0 or step == steps)
            )
            if should_validate:
                metrics = evaluate_model(self.model, validation_dataset)
                mean_mape = float(np.mean([metric.mape for metric in metrics.values()]))
                history.validation_mape.append((step, mean_mape))
                if mean_mape < history.best_validation_mape:
                    history.best_validation_mape = mean_mape
                    history.best_step = step
                    best_state = self.model.state_dict()

        if best_state is not None:
            self.model.load_state_dict(best_state)
        history.total_seconds = time.perf_counter() - start_time
        return history
