"""Microarchitecture substrate: port models, latencies, throughput oracle."""

from repro.uarch.ports import (
    HASWELL,
    IVY_BRIDGE,
    InstructionCost,
    MICROARCHITECTURES,
    MicroArchitecture,
    MicroOp,
    PortModel,
    SKYLAKE,
    get_microarchitecture,
)
from repro.uarch.scheduler import ThroughputBreakdown, ThroughputOracle

__all__ = [
    "HASWELL",
    "IVY_BRIDGE",
    "SKYLAKE",
    "InstructionCost",
    "MICROARCHITECTURES",
    "MicroArchitecture",
    "MicroOp",
    "PortModel",
    "get_microarchitecture",
    "ThroughputBreakdown",
    "ThroughputOracle",
]
