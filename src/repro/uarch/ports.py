"""Execution-port and latency model of the target microarchitectures.

The GRANITE paper trains on hardware measurements from three Intel
microarchitectures: Ivy Bridge, Haswell and Skylake.  Real measurements are
not available offline, so this package provides an analytical, port-based
throughput model in the spirit of llvm-mca / uiCA that serves two purposes:

1. as the *ground-truth oracle* used to label the synthetic datasets, and
2. as the hand-tuned analytical baseline the paper contrasts learned models
   against (Section 2.1).

The model is deliberately simplified but structured like the real machines:
each instruction decomposes into micro-ops, each micro-op can execute on a
subset of the execution ports, every instruction has a result latency, and
the three microarchitectures differ in their port counts, latencies and
divider implementations — which is exactly the kind of variation the
multi-task experiments in the paper exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.semantics import InstructionCategory, semantics_for

__all__ = [
    "MicroOp",
    "InstructionCost",
    "PortModel",
    "MicroArchitecture",
    "IVY_BRIDGE",
    "HASWELL",
    "SKYLAKE",
    "MICROARCHITECTURES",
    "get_microarchitecture",
]


@dataclass(frozen=True)
class MicroOp:
    """A single micro-operation that can execute on any of a set of ports."""

    ports: FrozenSet[str]

    @staticmethod
    def on(*ports: str) -> "MicroOp":
        return MicroOp(ports=frozenset(ports))


@dataclass(frozen=True)
class InstructionCost:
    """Cost of one instruction on one microarchitecture.

    Attributes:
        micro_ops: The execution micro-ops (excluding load/store micro-ops,
            which are added automatically for memory operands).
        latency: Result latency in cycles (register-to-register).
        notes: Optional free-form description, for debugging.
    """

    micro_ops: Tuple[MicroOp, ...]
    latency: float
    notes: str = ""

    @property
    def num_micro_ops(self) -> int:
        return len(self.micro_ops)


@dataclass(frozen=True)
class PortModel:
    """The execution ports of one microarchitecture."""

    #: All execution port names (e.g. ``"p0"``).
    ports: Tuple[str, ...]
    #: Ports able to execute simple integer ALU micro-ops.
    alu_ports: Tuple[str, ...]
    #: Ports able to execute load micro-ops.
    load_ports: Tuple[str, ...]
    #: Ports able to execute store-address micro-ops.
    store_address_ports: Tuple[str, ...]
    #: Ports able to execute store-data micro-ops.
    store_data_ports: Tuple[str, ...]
    #: Ports able to execute vector/floating-point micro-ops.
    vector_ports: Tuple[str, ...]
    #: Port hosting the integer/FP divider.
    divider_port: str
    #: Ports able to execute branch micro-ops.
    branch_ports: Tuple[str, ...]


@dataclass(frozen=True)
class MicroArchitecture:
    """A complete analytical model of one microarchitecture.

    Attributes:
        name: Human-readable name used throughout the paper's tables.
        port_model: The execution-port layout.
        issue_width: Micro-ops issued (renamed) per cycle.
        latency: Per-category result latency in cycles.
        divide_latency: Latency of integer/FP division.
        divide_inverse_throughput: Cycles the divider is blocked per divide.
        load_latency: Additional latency of a load feeding a dependent op.
        multiply_latency: Latency of integer multiplication.
        fp_multiply_latency: Latency of scalar FP multiplication.
        fp_add_latency: Latency of scalar FP addition.
        lock_penalty: Extra cycles for LOCK-prefixed instructions.
        rep_cost_per_iteration: Amortised cycles per REP string iteration.
    """

    name: str
    port_model: PortModel
    issue_width: int
    divide_latency: float
    divide_inverse_throughput: float
    load_latency: float
    store_latency: float
    multiply_latency: float
    fp_multiply_latency: float
    fp_add_latency: float
    fp_divide_latency: float
    fp_divide_inverse_throughput: float
    lock_penalty: float
    rep_cost_per_iteration: float
    #: Calibration constant: measured-throughput = cycles * scale.  The two
    #: dataset methodologies in the paper apply different normalisations.
    nominal_frequency_ghz: float = 3.5

    # ------------------------------------------------------------------ #
    # Instruction costing.
    # ------------------------------------------------------------------ #
    def cost_of(self, instruction: Instruction) -> InstructionCost:
        """Returns execution micro-ops and latency for ``instruction``.

        Memory micro-ops (load / store address / store data) are added on
        top of this cost by the scheduler, because they depend on the
        operands rather than the mnemonic.
        """
        semantics = semantics_for(instruction)
        category = semantics.category
        ports = self.port_model
        alu = MicroOp(frozenset(ports.alu_ports))
        vector = MicroOp(frozenset(ports.vector_ports))
        branch = MicroOp(frozenset(ports.branch_ports))
        divider = MicroOp(frozenset((ports.divider_port,)))
        port0 = MicroOp(frozenset((ports.vector_ports[0],)))
        port1 = MicroOp(frozenset((ports.vector_ports[min(1, len(ports.vector_ports) - 1)],)))

        if category in (InstructionCategory.MOVE, InstructionCategory.STACK):
            return InstructionCost((alu,), 1.0, "integer move")
        if category is InstructionCategory.NOP:
            return InstructionCost((), 0.0, "nop")
        if category is InstructionCategory.LEA:
            complex_lea = False
            for operand in instruction.operands:
                if operand.is_memory and (
                    operand.memory.index is not None and operand.memory.displacement != 0
                ):
                    complex_lea = True
            latency = 3.0 if complex_lea else 1.0
            return InstructionCost((port1,), latency, "lea")
        if category in (InstructionCategory.ARITHMETIC, InstructionCategory.LOGIC,
                        InstructionCategory.COMPARE, InstructionCategory.CONVERT,
                        InstructionCategory.SET_CONDITION):
            return InstructionCost((alu,), 1.0, "simple alu")
        if category is InstructionCategory.CONDITIONAL_MOVE:
            return InstructionCost((alu, alu), 2.0, "cmov")
        if category is InstructionCategory.SHIFT:
            return InstructionCost((port0,), 1.0, "shift")
        if category is InstructionCategory.BIT_MANIPULATION:
            return InstructionCost((port1,), 3.0, "bit manipulation")
        if category is InstructionCategory.MULTIPLY:
            return InstructionCost((port1,), self.multiply_latency, "integer multiply")
        if category is InstructionCategory.DIVIDE:
            blocking = max(1, int(round(self.divide_inverse_throughput)))
            return InstructionCost(
                tuple([divider] * blocking), self.divide_latency, "integer divide"
            )
        if category is InstructionCategory.BRANCH:
            return InstructionCost((branch,), 1.0, "branch")
        if category is InstructionCategory.VECTOR_MOVE:
            return InstructionCost((vector,), 1.0, "vector move")
        if category is InstructionCategory.VECTOR_ARITHMETIC:
            return InstructionCost((vector,), self.fp_add_latency, "vector add")
        if category is InstructionCategory.VECTOR_MULTIPLY:
            return InstructionCost((port0,), self.fp_multiply_latency, "vector multiply")
        if category is InstructionCategory.VECTOR_DIVIDE:
            blocking = max(1, int(round(self.fp_divide_inverse_throughput)))
            return InstructionCost(
                tuple([divider] * blocking), self.fp_divide_latency, "vector divide"
            )
        if category in (InstructionCategory.VECTOR_LOGIC, InstructionCategory.VECTOR_COMPARE):
            return InstructionCost((vector,), 1.0, "vector logic")
        # Unknown category: a safe, generic single-µop ALU cost.
        return InstructionCost((alu,), 1.0, "generic")

    def prefix_penalty(self, instruction: Instruction) -> float:
        """Extra cycles incurred by LOCK / REP prefixes."""
        penalty = 0.0
        for prefix in instruction.prefixes:
            if prefix == "LOCK":
                penalty += self.lock_penalty
            elif prefix in ("REP", "REPE", "REPZ", "REPNE", "REPNZ"):
                penalty += self.rep_cost_per_iteration
        return penalty


def _intel_port_model(has_port6_and_7: bool) -> PortModel:
    """Builds the Sandy Bridge-family (IVB) or Haswell-family port layout."""
    if has_port6_and_7:
        return PortModel(
            ports=("p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"),
            alu_ports=("p0", "p1", "p5", "p6"),
            load_ports=("p2", "p3"),
            store_address_ports=("p2", "p3", "p7"),
            store_data_ports=("p4",),
            vector_ports=("p0", "p1", "p5"),
            divider_port="p0",
            branch_ports=("p0", "p6"),
        )
    return PortModel(
        ports=("p0", "p1", "p2", "p3", "p4", "p5"),
        alu_ports=("p0", "p1", "p5"),
        load_ports=("p2", "p3"),
        store_address_ports=("p2", "p3"),
        store_data_ports=("p4",),
        vector_ports=("p0", "p1", "p5"),
        divider_port="p0",
        branch_ports=("p5",),
    )


IVY_BRIDGE = MicroArchitecture(
    name="Ivy Bridge",
    port_model=_intel_port_model(has_port6_and_7=False),
    issue_width=4,
    divide_latency=26.0,
    divide_inverse_throughput=22.0,
    load_latency=5.0,
    store_latency=1.0,
    multiply_latency=3.0,
    fp_multiply_latency=5.0,
    fp_add_latency=3.0,
    fp_divide_latency=22.0,
    fp_divide_inverse_throughput=14.0,
    lock_penalty=19.0,
    rep_cost_per_iteration=4.0,
    nominal_frequency_ghz=3.4,
)

HASWELL = MicroArchitecture(
    name="Haswell",
    port_model=_intel_port_model(has_port6_and_7=True),
    issue_width=4,
    divide_latency=25.0,
    divide_inverse_throughput=10.0,
    load_latency=5.0,
    store_latency=1.0,
    multiply_latency=3.0,
    fp_multiply_latency=5.0,
    fp_add_latency=3.0,
    fp_divide_latency=20.0,
    fp_divide_inverse_throughput=13.0,
    lock_penalty=17.0,
    rep_cost_per_iteration=3.0,
    nominal_frequency_ghz=3.5,
)

SKYLAKE = MicroArchitecture(
    name="Skylake",
    port_model=_intel_port_model(has_port6_and_7=True),
    issue_width=4,
    divide_latency=23.0,
    divide_inverse_throughput=6.0,
    load_latency=4.0,
    store_latency=1.0,
    multiply_latency=3.0,
    fp_multiply_latency=4.0,
    fp_add_latency=4.0,
    fp_divide_latency=14.0,
    fp_divide_inverse_throughput=4.0,
    lock_penalty=16.0,
    rep_cost_per_iteration=2.5,
    nominal_frequency_ghz=3.6,
)

#: Microarchitectures in the order used by every table of the paper.
MICROARCHITECTURES: Dict[str, MicroArchitecture] = {
    "ivy_bridge": IVY_BRIDGE,
    "haswell": HASWELL,
    "skylake": SKYLAKE,
}


def get_microarchitecture(name: str) -> MicroArchitecture:
    """Looks up a microarchitecture by key or display name."""
    key = name.lower().replace(" ", "_")
    if key not in MICROARCHITECTURES:
        raise KeyError(
            f"unknown microarchitecture {name!r}; available: {sorted(MICROARCHITECTURES)}"
        )
    return MICROARCHITECTURES[key]
