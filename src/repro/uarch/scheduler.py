"""Analytical throughput oracle.

The oracle estimates the steady-state throughput of a basic block — the
number of cycles per iteration when the block is executed repeatedly in a
loop, which is the quantity measured by the BHive methodology and predicted
by GRANITE, Ithemal and the analytical models the paper references
(llvm-mca, IACA, uiCA).

The estimate is the maximum of three classical bounds:

* **Port pressure** — micro-ops are assigned fractionally to their allowed
  execution ports so as to minimise the maximum per-port load; the resulting
  makespan is an exact lower bound computed with the subset formula
  ``max_S (µops restricted to S) / |S|`` over port subsets ``S``.
* **Front-end width** — total micro-ops divided by the issue width.
* **Loop-carried dependency chains** — the steady-state growth of the
  data-dependency critical path when the block is unrolled, which captures
  latency-bound blocks (pointer chasing, long FP chains).

Serialising effects (LOCK prefixes, REP string instructions, divides beyond
their blocking throughput) are added on top.  The three microarchitectures
differ through their port layouts and latency tables in
:mod:`repro.uarch.ports`, so the same block gets genuinely different labels
per microarchitecture — the structure the multi-task model exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple


from repro.isa.basic_block import BasicBlock
from repro.isa.instructions import Instruction
from repro.isa.operands import OperandKind
from repro.isa.semantics import OperandAction, semantics_for
from repro.uarch.ports import InstructionCost, MicroArchitecture, MicroOp

__all__ = ["ThroughputBreakdown", "ThroughputOracle"]


@dataclass(frozen=True)
class ThroughputBreakdown:
    """The oracle's estimate and its contributing bounds.

    Attributes:
        cycles_per_iteration: The final estimate (max of the bounds plus the
            serialisation penalty).
        port_pressure_bound: Cycles implied by the busiest execution port.
        frontend_bound: Cycles implied by the issue width.
        latency_bound: Cycles implied by loop-carried dependency chains.
        serialization_penalty: Extra cycles from LOCK/REP prefixes.
        num_micro_ops: Total micro-ops per iteration.
    """

    cycles_per_iteration: float
    port_pressure_bound: float
    frontend_bound: float
    latency_bound: float
    serialization_penalty: float
    num_micro_ops: int


@dataclass(frozen=True)
class _ScheduledInstruction:
    """Internal record: one instruction with its micro-ops and latency."""

    instruction: Instruction
    micro_ops: Tuple[MicroOp, ...]
    latency: float
    has_load: bool
    has_store: bool


class ThroughputOracle:
    """Estimates basic-block throughput for one microarchitecture."""

    def __init__(self, microarchitecture: MicroArchitecture) -> None:
        self.microarchitecture = microarchitecture

    # ------------------------------------------------------------------ #
    # Public API.
    # ------------------------------------------------------------------ #
    def throughput(self, block: BasicBlock) -> float:
        """Returns the estimated cycles per iteration of ``block``."""
        return self.breakdown(block).cycles_per_iteration

    def breakdown(self, block: BasicBlock) -> ThroughputBreakdown:
        """Returns the estimate together with its contributing bounds."""
        scheduled = [self._schedule_instruction(instruction) for instruction in block]
        all_micro_ops: List[MicroOp] = []
        for record in scheduled:
            all_micro_ops.extend(record.micro_ops)

        port_bound = self._port_pressure_bound(all_micro_ops)
        frontend_bound = len(all_micro_ops) / float(self.microarchitecture.issue_width)
        latency_bound = self._loop_carried_latency_bound(block, scheduled)
        serialization = sum(
            self.microarchitecture.prefix_penalty(record.instruction) for record in scheduled
        )

        cycles = max(port_bound, frontend_bound, latency_bound) + serialization
        # Even an empty block costs something when measured in a loop.
        cycles = max(cycles, 0.3)
        return ThroughputBreakdown(
            cycles_per_iteration=cycles,
            port_pressure_bound=port_bound,
            frontend_bound=frontend_bound,
            latency_bound=latency_bound,
            serialization_penalty=serialization,
            num_micro_ops=len(all_micro_ops),
        )

    # ------------------------------------------------------------------ #
    # Instruction scheduling.
    # ------------------------------------------------------------------ #
    def _schedule_instruction(self, instruction: Instruction) -> _ScheduledInstruction:
        """Expands one instruction into micro-ops, adding memory micro-ops."""
        uarch = self.microarchitecture
        ports = uarch.port_model
        cost: InstructionCost = uarch.cost_of(instruction)
        micro_ops = list(cost.micro_ops)
        latency = cost.latency

        semantics = semantics_for(instruction)
        has_load = False
        has_store = False
        for position, operand in enumerate(instruction.operands):
            if operand.kind is not OperandKind.MEMORY:
                continue
            action = semantics.action_for_operand(position)
            if action in (OperandAction.READ, OperandAction.READ_WRITE):
                has_load = True
                micro_ops.append(MicroOp(frozenset(ports.load_ports)))
            if action in (OperandAction.WRITE, OperandAction.READ_WRITE):
                has_store = True
                micro_ops.append(MicroOp(frozenset(ports.store_address_ports)))
                micro_ops.append(MicroOp(frozenset(ports.store_data_ports)))
        if has_load:
            latency += uarch.load_latency
        if has_store:
            latency += uarch.store_latency
        return _ScheduledInstruction(
            instruction=instruction,
            micro_ops=tuple(micro_ops),
            latency=latency,
            has_load=has_load,
            has_store=has_store,
        )

    # ------------------------------------------------------------------ #
    # Bounds.
    # ------------------------------------------------------------------ #
    def _port_pressure_bound(self, micro_ops: Sequence[MicroOp]) -> float:
        """Exact fractional makespan of assigning micro-ops to ports.

        Uses the standard result that the optimum of the fractional
        assignment LP equals ``max_S count(µops with ports ⊆ S) / |S|``
        over all port subsets S.  The number of distinct port sets appearing
        in practice is small, so only subsets formed as unions of those sets
        need to be considered.
        """
        if not micro_ops:
            return 0.0
        distinct_sets: List[frozenset] = []
        counts: Dict[frozenset, int] = {}
        for micro_op in micro_ops:
            counts[micro_op.ports] = counts.get(micro_op.ports, 0) + 1
        distinct_sets = list(counts)

        best = 0.0
        # All unions of up to len(distinct_sets) distinct port sets.
        for size in range(1, len(distinct_sets) + 1):
            for combo in combinations(distinct_sets, size):
                union: frozenset = frozenset().union(*combo)
                restricted = sum(
                    count for port_set, count in counts.items() if port_set <= union
                )
                if restricted:
                    best = max(best, restricted / len(union))
        return best

    def _loop_carried_latency_bound(
        self, block: BasicBlock, scheduled: Sequence[_ScheduledInstruction]
    ) -> float:
        """Steady-state per-iteration growth of the dependency critical path.

        The block is conceptually unrolled several times with dependencies
        carried across iterations; the bound is the increase of the critical
        path per unrolled copy once the schedule reaches steady state.
        Memory is treated conservatively as a single location, matching the
        def-use analysis in :mod:`repro.isa.basic_block`.
        """
        num_instructions = len(block)
        if num_instructions == 0:
            return 0.0

        unroll = 4
        latencies = [record.latency for record in scheduled]
        accesses = block.accesses

        finish: List[float] = [0.0] * (num_instructions * unroll)
        last_writer: Dict[str, int] = {}
        iteration_max: List[float] = []
        for copy in range(unroll):
            for index in range(num_instructions):
                flat_index = copy * num_instructions + index
                ready = 0.0
                for resource in accesses[index].reads:
                    producer = last_writer.get(resource)
                    if producer is not None:
                        ready = max(ready, finish[producer])
                finish[flat_index] = ready + latencies[index]
                for resource in accesses[index].writes:
                    last_writer[resource] = flat_index
            iteration_max.append(
                max(finish[copy * num_instructions : (copy + 1) * num_instructions])
            )

        if unroll < 2:
            return iteration_max[-1]
        # Growth between the last two unrolled copies approximates the
        # asymptotic cycle mean of the dependency graph.
        growth = iteration_max[-1] - iteration_max[-2]
        return max(growth, 0.0)
