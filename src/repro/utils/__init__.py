"""Small shared utilities (caching, ...) used across subsystems."""

from repro.utils.cache import LRUCache

__all__ = ["LRUCache"]
