"""A minimal LRU cache with hit/miss accounting.

``functools.lru_cache`` memoizes functions, but the models need an *object*
cache they can key by canonical block text, inspect (hit rates feed the
throughput benchmarks) and clear explicitly, so this module provides a tiny
ordered-dict based implementation instead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

__all__ = ["LRUCache"]

KeyT = TypeVar("KeyT", bound=Hashable)
ValueT = TypeVar("ValueT")


class LRUCache(Generic[KeyT, ValueT]):
    """Least-recently-used cache bounded to ``maxsize`` entries.

    A ``maxsize`` of zero (or a negative value) disables the cache: ``get``
    always misses and ``put`` is a no-op, which lets callers turn caching
    off through configuration without branching at every call site.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[KeyT, ValueT]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: KeyT) -> bool:
        return key in self._entries

    def get(self, key: KeyT) -> Optional[ValueT]:
        """Returns the cached value for ``key`` (marking it recent) or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: KeyT, value: ValueT) -> None:
        """Inserts ``key``, evicting the least recently used entry if full."""
        if self.maxsize <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Removes every entry (hit/miss counters are preserved)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
