"""DET001 bad fixture: global RNGs, unseeded generator, wall clock."""

import random
import time

import numpy as np


def jitter():
    noise = np.random.normal()
    pick = random.choice([1, 2, 3])
    rng = np.random.default_rng()
    started = time.time()
    return noise, pick, rng, started
