"""DET001 good fixture: seeded generators and a monotonic clock."""

import random
import time

import numpy as np


def jitter(seed):
    rng = np.random.default_rng(seed)
    stdlib_rng = random.Random(seed)
    started = time.monotonic()
    return rng.normal(), stdlib_rng.random(), started
