"""DT001 bad fixture: dtype-less constructors and float64-forcing spellings."""

import numpy as np


def forward(n):
    buffer = np.zeros((n, 4))
    scale = np.ones(n, dtype=float)
    return buffer * scale.astype(float)
