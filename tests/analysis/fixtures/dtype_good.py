"""DT001 good fixture: every constructor names its dtype."""

import numpy as np


def forward(n):
    buffer = np.zeros((n, 4), dtype=np.float32)
    indices = np.arange(n, dtype=np.int64)
    prototype = np.empty_like(buffer)
    return buffer, indices, prototype
