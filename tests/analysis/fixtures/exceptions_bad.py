"""EX001 bad fixture: broad handlers that swallow errors silently."""


def run(jobs):
    done = 0
    for job in jobs:
        try:
            job()
        except Exception:
            pass
        try:
            job()
        except:
            continue
        done += 1
    return done
