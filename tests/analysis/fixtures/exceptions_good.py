"""EX001 good fixture: broad handlers that count, log, or re-raise."""


def run(jobs, log):
    errors = 0
    for job in jobs:
        try:
            job()
        except Exception:
            errors += 1
        try:
            job()
        except Exception as error:
            log(error)
            raise
    return errors
