"""RC001 bad fixture: counter written under the lock, accessed off-lock."""

import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self._worker = threading.Thread(target=self._loop)

    def submit(self, item):
        with self._lock:
            self.requests += 1
        return item

    def snapshot(self):
        return {"requests": self.requests}

    def _loop(self):
        self.requests += 1
