"""RC001 good fixture: locked accesses, condition alias, _locked convention."""

import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.requests = 0
        self.depth = 0  # guarded-by: _lock
        self._worker = threading.Thread(target=self._loop)

    def submit(self, item):
        with self._lock:
            self.requests += 1
            self._bump_locked()
        return item

    def snapshot(self):
        with self._cond:
            return {"requests": self.requests, "depth": self.depth}

    def _bump_locked(self):
        self.depth += 1

    def _loop(self):
        with self._lock:
            self.requests += 1
