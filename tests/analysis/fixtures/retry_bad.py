"""RT001 bad fixture: hand-rolled sleep-in-try retry loops."""

import time


def fetch_with_retries(client, attempts=5):
    for attempt in range(attempts):
        try:
            return client.fetch()
        except ConnectionError:
            time.sleep(2**attempt)
    raise RuntimeError("gave up")


def poll_until_ready(backend):
    while True:
        try:
            if backend.ready():
                return True
        except OSError:
            time.sleep(0.1)
