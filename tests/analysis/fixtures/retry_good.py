"""RT001 good fixture: retries routed through the sanctioned policy."""

import time

from repro.serve.resilience import RetryPolicy, run_with_retries


def fetch_with_retries(client):
    policy = RetryPolicy(max_attempts=5, seed=7)
    return run_with_retries(
        client.fetch,
        policy,
        retryable=lambda error: isinstance(error, ConnectionError),
        token="fetch",
    )


def plain_pacing(items):
    # A sleep in a loop without a try is pacing, not a retry.
    for item in items:
        item.emit()
        time.sleep(0.01)
