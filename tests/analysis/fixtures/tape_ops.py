"""TP001 fixture: a mini tensor module with one uncovered op."""


class Tensor:
    @staticmethod
    def _make(data, parents, backward):
        raise NotImplementedError

    def relu(self):
        return Tensor._make(None, (self,), None)

    def softplus(self):
        return Tensor._make(None, (self,), None)

    def __mul__(self, other):
        return Tensor._make(None, (self, other), None)
