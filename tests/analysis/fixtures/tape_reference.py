"""TP001 fixture: mini gradcheck file referencing relu and the * operator."""


def check_relu(tensor):
    assert tensor.relu() is not None


def check_mul(tensor):
    assert (tensor * 2.0) is not None
