"""Each checker catches its bad fixture and passes its good fixture.

Fixtures live under ``fixtures/`` as plain (non-collected) source files;
path-scoped rules are exercised by binding the fixture source to a virtual
path inside the rule's scope.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis import FileContext, all_checkers, analyze_files

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule, context):
    checkers = [checker for checker in all_checkers() if checker.rule == rule]
    assert checkers, f"no checker registered for {rule}"
    return analyze_files([context], checkers)


def fixture_context(name, virtual_path):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return FileContext(Path(virtual_path), source, display_path=virtual_path)


class TestLockDiscipline:
    def test_bad_fixture_flags_offlock_accesses(self):
        context = fixture_context("lock_bad.py", "src/repro/serve/lock_bad.py")
        findings = run_rule("RC001", context)
        assert [(f.rule, f.line) for f in findings] == [("RC001", 18), ("RC001", 21)]
        assert "snapshot" in findings[0].message
        assert "_loop" in findings[1].message

    def test_good_fixture_is_clean(self):
        context = fixture_context("lock_good.py", "src/repro/serve/lock_good.py")
        assert run_rule("RC001", context) == []

    def test_rule_is_scoped_to_serve(self):
        context = fixture_context("lock_bad.py", "src/repro/nn/lock_bad.py")
        assert run_rule("RC001", context) == []

    def test_guarded_by_comment_establishes_guard(self):
        source = (
            "import threading\n"
            "\n"
            "class Thing:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.depth = 0  # guarded-by: _lock\n"
            "\n"
            "    def peek(self):\n"
            "        return self.depth\n"
        )
        context = FileContext(Path("src/repro/serve/thing.py"), source)
        findings = run_rule("RC001", context)
        assert [(f.rule, f.line) for f in findings] == [("RC001", 9)]


class TestDtypeDiscipline:
    def test_bad_fixture_flags_all_three_spellings(self):
        context = fixture_context("dtype_bad.py", "src/repro/gnn/blocks.py")
        findings = run_rule("DT001", context)
        assert [(f.rule, f.line) for f in findings] == [
            ("DT001", 7),
            ("DT001", 8),
            ("DT001", 9),
        ]
        assert "without an explicit dtype=" in findings[0].message
        assert "dtype=float" in findings[1].message
        assert ".astype(float)" in findings[2].message

    def test_good_fixture_is_clean(self):
        context = fixture_context("dtype_good.py", "src/repro/gnn/blocks.py")
        assert run_rule("DT001", context) == []

    def test_rule_is_scoped_to_fast_path_modules(self):
        context = fixture_context("dtype_bad.py", "src/repro/data/loader.py")
        assert run_rule("DT001", context) == []


class TestDeterminism:
    def test_bad_fixture_flags_each_source_of_nondeterminism(self):
        context = fixture_context("determinism_bad.py", "examples/jitter.py")
        findings = run_rule("DET001", context)
        assert [(f.rule, f.line) for f in findings] == [
            ("DET001", 10),
            ("DET001", 11),
            ("DET001", 12),
            ("DET001", 13),
        ]
        assert "global RNG" in findings[0].message
        assert "global RNG" in findings[1].message
        assert "without a seed" in findings[2].message
        assert "wall clock" in findings[3].message

    def test_good_fixture_is_clean(self):
        context = fixture_context("determinism_good.py", "examples/jitter.py")
        assert run_rule("DET001", context) == []


class TestExceptionHygiene:
    def test_bad_fixture_flags_silent_handlers(self):
        context = fixture_context("exceptions_bad.py", "src/repro/serve/run.py")
        findings = run_rule("EX001", context)
        assert [(f.rule, f.line) for f in findings] == [("EX001", 9), ("EX001", 13)]
        assert "except Exception:" in findings[0].message
        assert "bare except:" in findings[1].message

    def test_good_fixture_is_clean(self):
        context = fixture_context("exceptions_good.py", "src/repro/serve/run.py")
        assert run_rule("EX001", context) == []

    def test_rule_is_scoped_to_serve(self):
        context = fixture_context("exceptions_bad.py", "src/repro/data/run.py")
        assert run_rule("EX001", context) == []


class TestRetryDiscipline:
    def test_bad_fixture_flags_each_adhoc_retry_sleep(self):
        context = fixture_context("retry_bad.py", "src/repro/serve/retry_bad.py")
        findings = run_rule("RT001", context)
        assert [(f.rule, f.line) for f in findings] == [("RT001", 11), ("RT001", 21)]
        assert "run_with_retries" in findings[0].message

    def test_good_fixture_is_clean(self):
        context = fixture_context("retry_good.py", "src/repro/serve/retry_good.py")
        assert run_rule("RT001", context) == []

    def test_rule_is_scoped_to_serve(self):
        context = fixture_context("retry_bad.py", "src/repro/data/retry_bad.py")
        assert run_rule("RT001", context) == []

    def test_resilience_module_hosts_the_sanctioned_loop(self):
        context = fixture_context(
            "retry_bad.py", "src/repro/serve/resilience.py"
        )
        assert run_rule("RT001", context) == []


class TestTapeCoverage:
    @pytest.fixture()
    def mini_project(self, tmp_path):
        tensor_path = tmp_path / "src" / "repro" / "nn" / "tensor.py"
        tensor_path.parent.mkdir(parents=True)
        shutil.copyfile(FIXTURES / "tape_ops.py", tensor_path)
        test_path = tmp_path / "tests" / "test_nn_gradcheck.py"
        test_path.parent.mkdir()
        shutil.copyfile(FIXTURES / "tape_reference.py", test_path)
        return tensor_path, test_path

    def test_uncovered_op_is_flagged(self, mini_project):
        tensor_path, _ = mini_project
        context = FileContext.from_path(tensor_path)
        findings = run_rule("TP001", context)
        assert [(f.rule, f.line) for f in findings] == [("TP001", 12)]
        assert "Tensor.softplus" in findings[0].message

    def test_operator_reference_covers_dunder(self, mini_project):
        # __mul__ is never named in the reference file, only used as `*`.
        tensor_path, _ = mini_project
        context = FileContext.from_path(tensor_path)
        assert not any(
            "__mul__" in f.message for f in run_rule("TP001", context)
        )

    def test_missing_test_file_is_itself_a_finding(self, mini_project):
        tensor_path, test_path = mini_project
        test_path.unlink()
        context = FileContext.from_path(tensor_path)
        findings = run_rule("TP001", context)
        assert [(f.rule, f.line) for f in findings] == [("TP001", 1)]
        assert "cannot locate" in findings[0].message
