"""Engine behavior: suppressions, baseline handling, and the CLI."""

import json
from pathlib import Path

from repro.analysis import Baseline, FileContext, all_checkers, analyze_files
from repro.analysis.__main__ import main


def det_checker():
    return [checker for checker in all_checkers() if checker.rule == "DET001"]


def det_context(source, path="examples/clock.py"):
    return FileContext(Path(path), source, display_path=path)


WALL_CLOCK = "import time\n\n\ndef when():\n    return time.time()\n"


class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self):
        source = WALL_CLOCK.replace(
            "return time.time()",
            "return time.time()  # repro: ignore[DET001]",
        )
        assert analyze_files([det_context(source)], det_checker()) == []

    def test_comment_line_suppresses_next_line(self):
        source = WALL_CLOCK.replace(
            "    return time.time()",
            "    # repro: ignore[DET001]\n    return time.time()",
        )
        assert analyze_files([det_context(source)], det_checker()) == []

    def test_bare_ignore_suppresses_all_rules(self):
        source = WALL_CLOCK.replace(
            "return time.time()",
            "return time.time()  # repro: ignore",
        )
        assert analyze_files([det_context(source)], det_checker()) == []

    def test_other_rule_id_does_not_suppress(self):
        source = WALL_CLOCK.replace(
            "return time.time()",
            "return time.time()  # repro: ignore[RC001]",
        )
        findings = analyze_files([det_context(source)], det_checker())
        assert [f.rule for f in findings] == ["DET001"]


class TestBaseline:
    def test_roundtrip_and_partition(self, tmp_path):
        findings = analyze_files([det_context(WALL_CLOCK)], det_checker())
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(baseline_path)
        loaded = Baseline.load(baseline_path)
        assert len(loaded) == 1
        new, baselined = loaded.partition(findings)
        assert new == [] and baselined == findings

    def test_matching_survives_line_shifts(self, tmp_path):
        findings = analyze_files([det_context(WALL_CLOCK)], det_checker())
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(baseline_path)
        shifted = "# a new leading comment\n" + WALL_CLOCK
        moved = analyze_files([det_context(shifted)], det_checker())
        assert moved[0].line == findings[0].line + 1
        new, baselined = Baseline.load(baseline_path).partition(moved)
        assert new == [] and len(baselined) == 1

    def test_multiplicity_is_respected(self, tmp_path):
        findings = analyze_files([det_context(WALL_CLOCK)], det_checker())
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(baseline_path)
        doubled = WALL_CLOCK + "\n\ndef again():\n    return time.time()\n"
        moved = analyze_files([det_context(doubled)], det_checker())
        assert len(moved) == 2
        new, baselined = Baseline.load(baseline_path).partition(moved)
        # Identical content on both lines: one entry covers exactly one.
        assert len(new) == 1 and len(baselined) == 1

    def test_missing_baseline_file_means_everything_is_new(self, tmp_path):
        findings = analyze_files([det_context(WALL_CLOCK)], det_checker())
        new, baselined = Baseline.load(tmp_path / "absent.json").partition(findings)
        assert new == findings and baselined == []


class TestCli:
    def write_project(self, tmp_path):
        target = tmp_path / "clock.py"
        target.write_text(WALL_CLOCK, encoding="utf-8")
        return target

    def test_text_format_and_exit_code(self, tmp_path, capsys):
        target = self.write_project(tmp_path)
        code = main([str(target), "--baseline", str(tmp_path / "b.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert "DET001" in captured.out
        assert "clock.py:5:" in captured.out

    def test_github_format(self, tmp_path, capsys):
        target = self.write_project(tmp_path)
        code = main(
            [str(target), "--format", "github", "--baseline", str(tmp_path / "b.json")]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.out.startswith("::error file=")
        assert "line=5" in captured.out and "title=DET001" in captured.out

    def test_json_format(self, tmp_path, capsys):
        target = self.write_project(tmp_path)
        code = main(
            [str(target), "--format", "json", "--baseline", str(tmp_path / "b.json")]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [(f["rule"], f["line"]) for f in payload] == [("DET001", 5)]

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        target = self.write_project(tmp_path)
        baseline = tmp_path / "b.json"
        assert main([str(target), "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main([str(target), "--baseline", str(baseline)]) == 0
        assert main([str(target), "--baseline", str(baseline), "--no-baseline"]) == 1

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n", encoding="utf-8")
        assert main([str(target), "--baseline", str(tmp_path / "b.json")]) == 0
