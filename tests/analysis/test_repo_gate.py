"""The repo itself passes its own analysis gate (what CI enforces)."""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_examples_benchmarks_have_no_new_findings():
    findings = analyze_paths(
        [REPO_ROOT / "src", REPO_ROOT / "examples", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
    )
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    new, _ = baseline.partition(findings)
    details = "\n".join(f"{f.path}:{f.line}: {f.rule} {f.message}" for f in new)
    assert not new, f"non-baselined analysis findings:\n{details}"


def test_baseline_is_empty():
    # Everything the checkers found in this repo was fixed, not
    # grandfathered; keep it that way unless a finding is deliberately
    # accepted and documented.
    assert len(Baseline.load(REPO_ROOT / "analysis-baseline.json")) == 0
