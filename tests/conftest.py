"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import build_ithemal_like_dataset
from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.isa.basic_block import BasicBlock


@pytest.fixture(scope="session")
def paper_example_block() -> BasicBlock:
    """The example basic block from Table 1 of the paper."""
    return BasicBlock.from_text(
        """
        CMP R15D, 1
        SBB EAX, EAX
        AND EAX, 0x8
        TEST ECX, ECX
        MOV DWORD PTR [RBP - 3], EAX
        MOV EAX, 1
        CMOVG EAX, ECX
        CMP EDX, EAX
        """,
        identifier="table1",
    )


@pytest.fixture(scope="session")
def figure1_block() -> BasicBlock:
    """The two-instruction example block from Figure 1 of the paper."""
    return BasicBlock.from_text(
        """
        MOV RAX, 12345
        ADD DWORD PTR [RAX + 16], EBX
        """,
        identifier="figure1",
    )


@pytest.fixture(scope="session")
def block_generator() -> BlockGenerator:
    """A deterministic synthetic block generator."""
    return BlockGenerator(GeneratorConfig(), seed=1234)


@pytest.fixture(scope="session")
def sample_blocks(block_generator):
    """Fifty deterministic synthetic basic blocks."""
    return block_generator.generate_blocks(50, prefix="test")


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small labelled dataset shared across training tests."""
    return build_ithemal_like_dataset(60, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(0)
