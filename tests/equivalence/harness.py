"""Golden corpus + model builders for the mixed-precision equivalence suite.

The tolerance logic itself lives in :mod:`repro.testing.equivalence` (so
benchmarks and CI share it); this module pins the *corpus* and the *golden
float64 predictions* the suite judges against:

* a synthetic part — ``build_ithemal_like_dataset`` blocks from a fixed
  seed, labels included;
* a BHive-format part — a checked-in CSV in the paper's BHive-style format
  (``golden/bhive_corpus.csv``), read through the real
  :mod:`repro.data.bhive_format` path, so format parsing is part of what
  the equivalence suite exercises;
* golden files — per-model float64 predictions over the combined corpus
  (``golden/<model>.json``), produced by models built from
  :data:`MODEL_SEED`.

Regenerate the goldens (and the BHive CSV) after an *intentional* change to
the float64 inference path::

    python tests/equivalence/harness.py --regenerate
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Tuple

import numpy as np

if __name__ == "__main__":  # script mode: make `repro` importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "..", "src")
    )

from repro.data.bhive_format import read_dataset_csv, write_dataset_csv
from repro.data.datasets import build_bhive_like_dataset, build_ithemal_like_dataset
from repro.isa.basic_block import BasicBlock
from repro.models import create_model
from repro.models.base import ThroughputModel
from repro.testing.equivalence import load_golden, save_golden

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

#: Weight-initialisation seed of every golden model.
MODEL_SEED = 1234

#: Model families covered by the suite (granite exercises the GN stack and
#: LayerNorm-heavy residual MLPs, ithemal+ the LSTM stack).
MODEL_NAMES = ("granite", "ithemal+")

SYNTHETIC_SEED = 2024
NUM_SYNTHETIC_BLOCKS = 24
BHIVE_SEED = 2025
NUM_BHIVE_BLOCKS = 12


def bhive_corpus_path() -> str:
    return os.path.join(GOLDEN_DIR, "bhive_corpus.csv")


def golden_path(model_name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{model_name.replace('+', '_plus')}.json")


def build_corpus() -> Tuple[List[BasicBlock], Dict[str, np.ndarray]]:
    """The fixed corpus: synthetic blocks + the checked-in BHive-format CSV.

    Returns ``(blocks, labels)`` with per-task label vectors aligned to the
    block order (synthetic first, BHive second).
    """
    synthetic = build_ithemal_like_dataset(NUM_SYNTHETIC_BLOCKS, seed=SYNTHETIC_SEED)
    bhive = read_dataset_csv(bhive_corpus_path())
    blocks = synthetic.blocks() + bhive.blocks()
    labels = {
        task: np.concatenate([synthetic.throughputs(task), bhive.throughputs(task)])
        for task in synthetic.microarchitectures
    }
    return blocks, labels


def build_model(model_name: str, inference_dtype: str) -> ThroughputModel:
    """One golden model: small config, fixed seed, explicit dtype.

    Weight initialisation depends only on the seed, so the float64 and
    float32 builds of the same family hold bit-identical master weights.
    """
    return create_model(
        model_name, small=True, seed=MODEL_SEED, inference_dtype=inference_dtype
    )


def create_model_with_other_weights() -> ThroughputModel:
    """A float32 model whose weights deliberately differ from the goldens.

    Used by the suite's self-checks to prove the harness actually fails on
    non-equivalent predictions.
    """
    return create_model(
        "granite", small=True, seed=MODEL_SEED + 1, inference_dtype="float32"
    )


def load_golden_predictions(model_name: str) -> Dict[str, np.ndarray]:
    predictions, metadata = load_golden(golden_path(model_name))
    expected = NUM_SYNTHETIC_BLOCKS + NUM_BHIVE_BLOCKS
    recorded = int(metadata.get("num_blocks", expected))
    if recorded != expected:
        raise ValueError(
            f"golden file for {model_name!r} covers {recorded} blocks, "
            f"expected {expected}; regenerate it"
        )
    return predictions


def regenerate() -> None:
    """Rewrites the BHive-format corpus CSV and every golden prediction file."""
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    bhive = build_bhive_like_dataset(NUM_BHIVE_BLOCKS, seed=BHIVE_SEED)
    write_dataset_csv(bhive, bhive_corpus_path())
    blocks, _ = build_corpus()
    for model_name in MODEL_NAMES:
        model = build_model(model_name, "float64")
        predictions = model.predict(blocks)
        save_golden(
            golden_path(model_name),
            predictions,
            metadata={
                "model": model_name,
                "model_seed": MODEL_SEED,
                "inference_dtype": "float64",
                "num_blocks": len(blocks),
                "synthetic_seed": SYNTHETIC_SEED,
                "bhive_seed": BHIVE_SEED,
            },
        )
        print(f"wrote {golden_path(model_name)} ({len(blocks)} blocks)")


if __name__ == "__main__":
    if "--regenerate" in sys.argv[1:]:
        regenerate()
    else:
        print(__doc__)
