"""The mixed-precision equivalence suite.

Three layers of protection around ``inference_dtype="float32"``:

1. **Drift guard** — the float64 path must reproduce the checked-in golden
   predictions for the fixed corpus, so the reference itself cannot move
   silently.
2. **Relative tolerance** — float32 predictions must stay within
   ``REL_TOL`` element-wise relative deviation of float64 on every task,
   on synthetic and BHive-format blocks alike.
3. **MAPE budget** — against the corpus labels, float32 may cost at most
   ``MAPE_BUDGET_PP`` percentage points of MAPE versus the golden float64
   predictions (the acceptance criterion of the serving mode).
"""

from __future__ import annotations

import numpy as np
import pytest

import harness
from repro.testing.equivalence import (
    assert_prediction_equivalent,
    compare_predictions,
    relative_errors,
)

#: Element-wise relative tolerance of float32 vs float64 predictions.
REL_TOL = 1e-3

#: MAPE delta budget, in percentage points (ISSUE acceptance criterion).
MAPE_BUDGET_PP = 0.5

#: Float64-vs-golden drift tolerance (allows BLAS reassociation across
#: platforms, catches any real change to the inference math).
DRIFT_TOL = 1e-9


@pytest.fixture(scope="module")
def corpus():
    return harness.build_corpus()


@pytest.fixture(scope="module")
def models():
    """(float64, float32) golden-model pairs per family, built once."""
    return {
        name: (harness.build_model(name, "float64"), harness.build_model(name, "float32"))
        for name in harness.MODEL_NAMES
    }


class TestCorpus:
    def test_corpus_shape_and_labels(self, corpus):
        blocks, labels = corpus
        assert len(blocks) == harness.NUM_SYNTHETIC_BLOCKS + harness.NUM_BHIVE_BLOCKS
        for task, values in labels.items():
            assert values.shape == (len(blocks),)
            assert np.all(values > 0), f"non-positive labels for {task}"

    def test_bhive_part_comes_from_csv_format(self):
        from repro.data.bhive_format import read_dataset_csv

        dataset = read_dataset_csv(harness.bhive_corpus_path())
        assert len(dataset.samples) == harness.NUM_BHIVE_BLOCKS
        assert all(len(sample.block) > 0 for sample in dataset.samples)


@pytest.mark.parametrize("model_name", harness.MODEL_NAMES)
class TestGoldenEquivalence:
    def test_float64_matches_golden(self, model_name, corpus, models):
        blocks, _ = corpus
        model64, _ = models[model_name]
        golden = harness.load_golden_predictions(model_name)
        predictions = model64.predict(blocks)
        for task, values in golden.items():
            errors = relative_errors(values, predictions[task])
            assert errors.max() <= DRIFT_TOL, (
                f"float64 {model_name}/{task} drifted from golden: "
                f"max rel err {errors.max():.3e}"
            )

    def test_float32_within_tolerance_of_float64(self, model_name, corpus, models):
        blocks, labels = corpus
        model64, model32 = models[model_name]
        report = assert_prediction_equivalent(
            model64,
            model32,
            blocks,
            rel_tol=REL_TOL,
            mape_budget=MAPE_BUDGET_PP,
            labels=labels,
        )
        print(f"\n--- {model_name} float32 vs float64 ---\n{report.summary()}")

    def test_float32_within_mape_budget_of_golden(self, model_name, corpus, models):
        """The budget also holds against the *checked-in* reference."""
        blocks, labels = corpus
        _, model32 = models[model_name]
        golden = harness.load_golden_predictions(model_name)
        report = compare_predictions(golden, model32.predict(blocks), labels=labels)
        assert report.max_abs_mape_delta <= MAPE_BUDGET_PP, report.summary()
        assert report.max_rel_error <= REL_TOL, report.summary()

    def test_float32_batched_equals_unbatched(self, model_name, corpus, models):
        """Micro-batching must not change float32 results (same reduction
        order per block regardless of batch composition is NOT guaranteed,
        but per-block rows are independent through every layer, so values
        must match to float32 resolution)."""
        blocks, _ = corpus
        _, model32 = models[model_name]
        model32.clear_prediction_cache()
        whole = model32.predict(blocks)
        model32.clear_prediction_cache()
        chunked = model32.predict(blocks, batch_size=7)
        for task in whole:
            errors = relative_errors(whole[task], chunked[task])
            assert errors.max() <= 1e-5


class TestHarnessSelfChecks:
    def test_relative_errors_floor_guards_near_zero(self):
        errors = relative_errors(np.array([0.0, 100.0]), np.array([0.5, 101.0]))
        # First entry: |0 - 0.5| / max(0, 0.5, floor=1) = 0.5, not inf.
        assert errors[0] == pytest.approx(0.5)
        assert errors[1] == pytest.approx(1.0 / 101.0)

    def test_compare_predictions_rejects_missing_tasks(self):
        with pytest.raises(KeyError, match="missing tasks"):
            compare_predictions({"haswell": np.ones(2)}, {})

    def test_assert_raises_on_genuinely_different_models(self, corpus):
        blocks, _ = corpus
        model_a = harness.build_model("granite", "float64")
        model_b = harness.create_model_with_other_weights()
        with pytest.raises(AssertionError, match="not equivalent"):
            assert_prediction_equivalent(model_a, model_b, blocks[:8], rel_tol=1e-3)

    def test_assert_rejects_empty_corpus(self):
        model = harness.build_model("granite", "float64")
        with pytest.raises(ValueError, match="empty"):
            assert_prediction_equivalent(model, model, [])
