"""Tests for the CSV dataset format (repro.data.bhive_format)."""

import numpy as np
import pytest

from repro.data.bhive_format import (
    dataset_from_csv_text,
    dataset_to_csv_text,
    read_dataset_csv,
    write_dataset_csv,
)
from repro.data.datasets import build_bhive_like_dataset


@pytest.fixture(scope="module")
def small_dataset():
    return build_bhive_like_dataset(15, seed=9)


class TestCsvRoundTrip:
    def test_text_round_trip_preserves_labels(self, small_dataset):
        text = dataset_to_csv_text(small_dataset)
        restored = dataset_from_csv_text(text, name="restored")
        assert len(restored) == len(small_dataset)
        for key in small_dataset.microarchitectures:
            np.testing.assert_allclose(
                restored.throughputs(key), small_dataset.throughputs(key), rtol=1e-3
            )

    def test_text_round_trip_preserves_blocks(self, small_dataset):
        restored = dataset_from_csv_text(dataset_to_csv_text(small_dataset))
        for original, loaded in zip(small_dataset, restored):
            assert len(original.block) == len(loaded.block)
            assert [i.mnemonic for i in original.block] == [i.mnemonic for i in loaded.block]

    def test_identifiers_preserved(self, small_dataset):
        restored = dataset_from_csv_text(dataset_to_csv_text(small_dataset))
        assert [s.block.identifier for s in restored] == [
            s.block.identifier for s in small_dataset
        ]

    def test_file_round_trip(self, small_dataset, tmp_path):
        path = str(tmp_path / "data" / "bhive.csv")
        write_dataset_csv(small_dataset, path)
        restored = read_dataset_csv(path)
        assert len(restored) == len(small_dataset)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_dataset_csv(str(tmp_path / "nope.csv"))

    def test_header_validation(self):
        with pytest.raises(ValueError):
            dataset_from_csv_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            dataset_from_csv_text("")

    def test_partial_labels_supported(self):
        text = (
            "identifier,assembly,ivy_bridge,haswell,skylake\n"
            'b0,"ADD RAX, RBX; SUB RCX, RDX",100.0,,105.0\n'
        )
        dataset = dataset_from_csv_text(text)
        assert len(dataset) == 1
        sample = dataset[0]
        assert "haswell" not in sample.throughputs
        assert sample.throughput("skylake") == pytest.approx(105.0)
        assert len(sample.block) == 2
