"""Tests for dataset building and splitting (repro.data.datasets)."""

import numpy as np
import pytest

from repro.data.datasets import (
    LabeledBlock,
    TARGET_MICROARCHITECTURES,
    ThroughputDataset,
    build_bhive_like_dataset,
    build_ithemal_like_dataset,
)
from repro.isa.basic_block import BasicBlock


class TestDatasetConstruction:
    def test_requested_size(self, tiny_dataset):
        assert len(tiny_dataset) == 60

    def test_every_block_labelled_for_all_targets(self, tiny_dataset):
        for sample in tiny_dataset:
            assert set(sample.throughputs) == set(TARGET_MICROARCHITECTURES)
            for value in sample.throughputs.values():
                assert value > 0.0

    def test_labels_are_per_100_iterations(self, tiny_dataset):
        """Measured values are O(100x) the per-iteration cycle counts."""
        values = tiny_dataset.throughputs("haswell")
        assert np.median(values) > 50.0

    def test_deterministic_given_seed(self):
        first = build_ithemal_like_dataset(20, seed=11)
        second = build_ithemal_like_dataset(20, seed=11)
        np.testing.assert_allclose(
            first.throughputs("skylake"), second.throughputs("skylake")
        )

    def test_bhive_dataset_uses_different_methodology(self):
        """The same seed and size still yield different labels because the
        measurement model differs (and the blocks differ by seed prefix)."""
        ithemal = build_ithemal_like_dataset(20, seed=3)
        bhive = build_bhive_like_dataset(20, seed=3)
        assert not np.allclose(
            ithemal.throughputs("haswell"), bhive.throughputs("haswell")
        )

    def test_labels_differ_across_microarchitectures(self, tiny_dataset):
        ivb = tiny_dataset.throughputs("ivy_bridge")
        skl = tiny_dataset.throughputs("skylake")
        assert not np.allclose(ivb, skl)

    def test_throughput_lookup_accepts_display_names(self, tiny_dataset):
        sample = tiny_dataset[0]
        assert sample.throughput("Ivy Bridge") == sample.throughput("ivy_bridge")

    def test_missing_label_raises(self):
        sample = LabeledBlock(BasicBlock.from_text("NOP"), {"haswell": 100.0})
        with pytest.raises(KeyError):
            sample.throughput("skylake")


class TestSplits:
    def test_train_test_split_fractions(self, tiny_dataset):
        train, test = tiny_dataset.train_test_split(test_fraction=0.17, seed=0)
        assert len(train) + len(test) == len(tiny_dataset)
        assert len(test) == pytest.approx(len(tiny_dataset) * 0.17, abs=1.0)

    def test_split_is_disjoint(self, tiny_dataset):
        train, test = tiny_dataset.train_test_split(seed=0)
        train_ids = {sample.block.identifier for sample in train}
        test_ids = {sample.block.identifier for sample in test}
        assert train_ids.isdisjoint(test_ids)

    def test_split_is_deterministic(self, tiny_dataset):
        first_train, _ = tiny_dataset.train_test_split(seed=5)
        second_train, _ = tiny_dataset.train_test_split(seed=5)
        assert [s.block.identifier for s in first_train] == [
            s.block.identifier for s in second_train
        ]

    def test_different_seed_changes_split(self, tiny_dataset):
        first_train, _ = tiny_dataset.train_test_split(seed=1)
        second_train, _ = tiny_dataset.train_test_split(seed=2)
        assert [s.block.identifier for s in first_train] != [
            s.block.identifier for s in second_train
        ]

    def test_invalid_fraction_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.train_test_split(test_fraction=1.5)

    def test_paper_splits_partition_everything(self, tiny_dataset):
        splits = tiny_dataset.paper_splits(seed=0)
        total = len(splits.train) + len(splits.validation) + len(splits.test)
        assert total == len(tiny_dataset)
        assert len(splits.validation) >= 1
        assert len(splits.test) >= 1

    def test_subset_preserves_samples(self, tiny_dataset):
        subset = tiny_dataset.subset([0, 2, 4])
        assert len(subset) == 3
        assert subset[1].block.identifier == tiny_dataset[2].block.identifier

    def test_multi_task_subset_keeps_fully_labelled_blocks(self):
        complete = LabeledBlock(
            BasicBlock.from_text("NOP"),
            {key: 100.0 for key in TARGET_MICROARCHITECTURES},
        )
        partial = LabeledBlock(BasicBlock.from_text("NOP"), {"haswell": 100.0})
        dataset = ThroughputDataset([complete, partial])
        assert len(dataset.multi_task_subset()) == 1

    def test_blocks_and_throughputs_align(self, tiny_dataset):
        blocks = tiny_dataset.blocks()
        labels = tiny_dataset.throughputs("haswell")
        assert len(blocks) == len(labels)
