"""Tests for the measurement-methodology models (repro.data.measurement)."""

import numpy as np
import pytest

from repro.data.measurement import (
    BHIVE_MEASUREMENT,
    ITERATIONS_PER_MEASUREMENT,
    ITHEMAL_MEASUREMENT,
    MeasurementModel,
)


class TestMeasurementModel:
    def test_deterministic_without_rng(self):
        value = ITHEMAL_MEASUREMENT.measure(5.0)
        assert value == ITHEMAL_MEASUREMENT.measure(5.0)

    def test_scaling_to_100_iterations(self):
        model = MeasurementModel("ideal", 0.0, 1.0, 0.0, 0.0)
        assert model.measure(3.0) == pytest.approx(3.0 * ITERATIONS_PER_MEASUREMENT)

    def test_overhead_added(self):
        assert ITHEMAL_MEASUREMENT.measure(5.0) > 5.0 * ITERATIONS_PER_MEASUREMENT

    def test_monotone_in_true_cycles(self):
        low = ITHEMAL_MEASUREMENT.measure(2.0)
        high = ITHEMAL_MEASUREMENT.measure(4.0)
        assert high > low

    def test_noise_is_bounded_and_seeded(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        assert ITHEMAL_MEASUREMENT.measure(5.0, rng1) == ITHEMAL_MEASUREMENT.measure(5.0, rng2)
        values = [ITHEMAL_MEASUREMENT.measure(5.0, np.random.default_rng(seed)) for seed in range(50)]
        noiseless = ITHEMAL_MEASUREMENT.measure(5.0)
        assert np.std(values) > 0
        assert all(abs(v - noiseless) / noiseless < 0.15 for v in values)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ITHEMAL_MEASUREMENT.measure(-1.0)

    def test_measurement_is_at_least_one(self):
        assert BHIVE_MEASUREMENT.measure(0.0) >= 1.0

    def test_quantisation(self):
        model = MeasurementModel("quantised", 0.0, 1.0, 0.0, 5.0)
        assert model.measure(1.234) % 5.0 == pytest.approx(0.0)

    def test_normalize_to_single_iteration(self):
        measured = ITHEMAL_MEASUREMENT.measure(5.0)
        assert ITHEMAL_MEASUREMENT.normalize_to_single_iteration(measured) == pytest.approx(
            measured / ITERATIONS_PER_MEASUREMENT
        )


class TestMethodologyDifferences:
    """The two datasets use different measurement tools (Section 5.1)."""

    def test_methodologies_have_different_constants(self):
        assert ITHEMAL_MEASUREMENT.calibration_bias != BHIVE_MEASUREMENT.calibration_bias
        assert ITHEMAL_MEASUREMENT.harness_overhead_cycles != BHIVE_MEASUREMENT.harness_overhead_cycles

    def test_same_block_measures_differently_across_methodologies(self):
        ithemal_value = ITHEMAL_MEASUREMENT.measure(5.0)
        bhive_value = BHIVE_MEASUREMENT.measure(5.0)
        relative_gap = abs(ithemal_value - bhive_value) / ithemal_value
        assert relative_gap > 0.03

    def test_methodology_gap_is_systematic_not_random(self):
        """The bias has the same sign across a range of cycle counts, so a
        model trained on one methodology is consistently off on the other."""
        gaps = []
        for cycles in np.linspace(1.0, 50.0, 20):
            gaps.append(BHIVE_MEASUREMENT.measure(cycles) - ITHEMAL_MEASUREMENT.measure(cycles))
        signs = np.sign(gaps[5:])  # skip the overhead-dominated small blocks
        assert np.all(signs == signs[0])
