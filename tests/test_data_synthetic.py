"""Tests for the synthetic block generator (repro.data.synthetic)."""

import numpy as np
import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig, WorkloadProfile
from repro.isa.parser import parse_block_text
from repro.isa.semantics import InstructionCategory, semantics_for


class TestDeterminism:
    def test_same_seed_same_blocks(self):
        first = BlockGenerator(seed=42).generate_blocks(20)
        second = BlockGenerator(seed=42).generate_blocks(20)
        assert [b.render() for b in first] == [b.render() for b in second]

    def test_different_seeds_differ(self):
        first = BlockGenerator(seed=1).generate_blocks(20)
        second = BlockGenerator(seed=2).generate_blocks(20)
        assert [b.render() for b in first] != [b.render() for b in second]

    def test_identifiers_are_stable(self):
        blocks = BlockGenerator(seed=0).generate_blocks(5, prefix="abc")
        assert [block.identifier for block in blocks] == [f"abc-{i}" for i in range(5)]


class TestBlockValidity:
    def test_lengths_respect_configuration(self):
        config = GeneratorConfig(min_instructions=2, max_instructions=12, mean_instructions=5.0)
        blocks = BlockGenerator(config, seed=3).generate_blocks(200)
        lengths = [len(block) for block in blocks]
        assert min(lengths) >= 2
        assert max(lengths) <= 12

    def test_generated_blocks_reparse(self, block_generator):
        """Every generated block renders to parseable Intel syntax."""
        for block in block_generator.generate_blocks(100):
            reparsed = parse_block_text(block.render())
            assert len(reparsed) == len(block)

    def test_mean_length_roughly_matches_config(self):
        config = GeneratorConfig(mean_instructions=8.0, max_instructions=60)
        blocks = BlockGenerator(config, seed=5).generate_blocks(500)
        mean_length = np.mean([len(block) for block in blocks])
        assert 5.0 <= mean_length <= 12.0

    def test_known_mnemonics_dominate(self, block_generator):
        """Generated instructions should have explicit semantics, not the
        generic fallback, in the overwhelming majority of cases."""
        total = 0
        unknown = 0
        for block in block_generator.generate_blocks(100):
            for instruction in block:
                total += 1
                if semantics_for(instruction).category is InstructionCategory.OTHER:
                    unknown += 1
        assert unknown / total < 0.01


class TestWorkloadDiversity:
    def test_profiles_produce_distinct_instruction_mixes(self):
        config = GeneratorConfig(
            profile_weights={WorkloadProfile.FLOATING_POINT: 1.0}
        )
        fp_blocks = BlockGenerator(config, seed=0).generate_blocks(50)
        fp_mnemonics = {i.mnemonic for b in fp_blocks for i in b}
        assert any(m.endswith("SD") or m.endswith("SS") for m in fp_mnemonics)

        config = GeneratorConfig(
            profile_weights={WorkloadProfile.INTEGER_ALU: 1.0}
        )
        int_blocks = BlockGenerator(config, seed=0).generate_blocks(50)
        int_mnemonics = {i.mnemonic for b in int_blocks for i in b}
        assert "ADD" in int_mnemonics or "SUB" in int_mnemonics
        assert not any(m.startswith("MUL") and m.endswith("PD") for m in int_mnemonics)

    def test_memory_copy_profile_uses_loads_and_stores(self):
        config = GeneratorConfig(profile_weights={WorkloadProfile.MEMORY_COPY: 1.0})
        blocks = BlockGenerator(config, seed=1).generate_blocks(20)
        assert all(any(i.has_memory_operand for i in block) for block in blocks if len(block) > 1)

    def test_dependency_chain_profile_has_deep_critical_path(self):
        config = GeneratorConfig(
            profile_weights={WorkloadProfile.DEPENDENCY_CHAIN: 1.0},
            min_instructions=6,
            mean_instructions=8.0,
        )
        blocks = BlockGenerator(config, seed=2).generate_blocks(20)
        deep = [b for b in blocks if len(b) >= 6]
        assert deep, "expected some blocks with at least 6 instructions"
        for block in deep:
            assert block.critical_path_length() >= len(block) * 0.5

    def test_control_idiom_profile_uses_flags(self):
        config = GeneratorConfig(profile_weights={WorkloadProfile.CONTROL_IDIOM: 1.0})
        blocks = BlockGenerator(config, seed=3).generate_blocks(30)
        mnemonics = {i.mnemonic for b in blocks for i in b}
        assert any(m.startswith("CMOV") or m.startswith("SET") or m in ("CMP", "TEST") for m in mnemonics)

    def test_mixture_covers_all_profiles(self, block_generator):
        """With the default mixture, both integer and vector code appear."""
        mnemonics = {i.mnemonic for b in block_generator.generate_blocks(300) for i in b}
        assert "MOV" in mnemonics
        assert any(m.startswith("ADD") and len(m) > 3 or m.endswith("SD") for m in mnemonics)

    def test_invalid_profile_weights_rejected(self):
        with pytest.raises(ValueError):
            BlockGenerator(GeneratorConfig(profile_weights={WorkloadProfile.INTEGER_ALU: 0.0}))
