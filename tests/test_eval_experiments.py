"""Smoke tests of the experiment functions (repro.eval.tables/figures/ablations).

These run every table/figure reproduction at the tiny "smoke" scale: the
goal is to verify the plumbing (training, evaluation, result containers,
formatting), not the quality of the results — that is what the benchmark
suite under ``benchmarks/`` checks at the larger "quick" scale.
"""

import numpy as np
import pytest

from repro.eval.ablations import (
    run_decoder_ablation,
    run_edge_ablation,
    run_layernorm_ablation,
    run_readout_ablation,
)
from repro.eval.figures import render_heatmap_ascii, run_figure3, run_figure4, run_figure5
from repro.eval.harness import ExperimentScale
from repro.eval.tables import run_table5, run_table6, run_table7, run_table8, run_table9
from repro.eval.timing import measure_model_timing, run_table10
from repro.models import create_model
from repro.data.datasets import build_bhive_like_dataset


SMOKE = ExperimentScale.smoke()


class TestTables:
    def test_table5_smoke(self):
        result = run_table5(SMOKE, include_vanilla_ithemal=False, evaluate_cross_dataset=True)
        assert set(result.models) == {"granite", "ithemal+"}
        for trained in result.models.values():
            assert np.isfinite(trained.average_mape())
        assert set(result.cross_dataset_metrics) == {"granite", "ithemal+"}
        table_text = result.format_table()
        assert "Ivy Bridge" in table_text and "paper MAPE" in table_text

    def test_table6_smoke(self):
        result = run_table6(SMOKE)
        assert result.dataset_name == "bhive"
        assert set(result.models) == {"granite", "ithemal+"}
        assert "granite" in result.format_table()

    def test_table7_smoke(self):
        result = run_table7(SMOKE, iteration_counts=(1, 2))
        assert set(result.mape_by_iterations) == {1, 2}
        assert np.isfinite(result.average_mape(1))
        assert result.best_iterations("haswell") in (1, 2)
        assert "iterations" in result.format_table()

    def test_table8_smoke(self):
        result = run_table8(SMOKE, model_names=("granite",))
        assert set(result.single_task_mape) == {"granite"}
        assert set(result.multi_task_mape["granite"]) == {"ivy_bridge", "haswell", "skylake"}
        assert np.isfinite(result.multitask_improvement("granite"))
        assert "single" in result.format_table()

    def test_table9_smoke(self):
        result = run_table9(SMOKE, loss_names=("mape", "mse"))
        assert set(result.metrics) == {"mape", "mse"}
        for loss_name in ("mape", "mse"):
            for microarchitecture in ("ivy_bridge", "haswell", "skylake"):
                row = result.metrics[loss_name][microarchitecture]
                assert set(row) == {"mape", "mse", "relative_mse", "huber", "relative_huber"}
                assert all(np.isfinite(value) for value in row.values())
        assert result.best_loss_by_mape("haswell") in ("mape", "mse")
        assert "train loss" in result.format_table()


class TestFigures:
    def test_figure3_smoke(self):
        result = run_figure3(SMOKE, model_names=("granite",))
        assert "granite" in result.histograms
        histogram = result.histograms["granite"]["haswell"]
        assert histogram.ndim == 2
        assert 0.0 <= result.diagonal_mass["granite"]["haswell"] <= 1.0
        ascii_plot = render_heatmap_ascii(histogram)
        assert len(ascii_plot.splitlines()) > 5

    def test_figure4_smoke(self):
        result = run_figure4(SMOKE, model_names=("granite",))
        counts, edges = result.histograms["granite"]["skylake"]
        assert counts.sum() > 0
        assert 0.0 <= result.underestimation["granite"]["skylake"] <= 1.0

    def test_figure5_smoke(self):
        result = run_figure5(SMOKE)
        assert result.dataset_name.startswith("bhive")
        assert set(result.histograms) == {"granite"}

    def test_render_heatmap_requires_2d(self):
        with pytest.raises(ValueError):
            render_heatmap_ascii(np.zeros(5))


class TestAblations:
    def test_decoder_ablation_smoke(self):
        result = run_decoder_ablation(SMOKE)
        assert set(result.dot_product_mape) == {"ivy_bridge", "haswell", "skylake"}
        assert np.isfinite(result.average_improvement())
        assert "dot-product" in result.format_table()

    def test_layernorm_ablation_smoke(self):
        result = run_layernorm_ablation(SMOKE)
        assert set(result.with_layernorm_mape) == {"ivy_bridge", "haswell", "skylake"}
        assert isinstance(result.without_layernorm_diverged, bool)
        assert "with LN" in result.format_table()

    def test_edge_ablation_smoke(self):
        result = run_edge_ablation(SMOKE)
        assert set(result.full_graph_mape) == {"ivy_bridge", "haswell", "skylake"}
        assert np.isfinite(result.dependency_edge_benefit())
        assert "structural only" in result.format_table()

    def test_readout_ablation_smoke(self):
        result = run_readout_ablation(SMOKE)
        assert set(result.per_instruction_mape) == {"ivy_bridge", "haswell", "skylake"}
        assert np.isfinite(result.per_instruction_benefit())
        for fraction in result.global_readout_underestimation.values():
            assert 0.0 <= fraction <= 1.0
        assert "global readout" in result.format_table()


class TestTiming:
    def test_measure_model_timing(self):
        dataset = build_bhive_like_dataset(30, seed=1)
        model = create_model("granite", small=True, seed=0)
        # Enough samples for the median to shrug off a stray GC pause or
        # scheduler blip (each batch is tens of milliseconds at most).
        timing = measure_model_timing(
            model, dataset, batch_size=10, num_training_batches=3, num_inference_batches=5
        )
        assert timing.training_seconds_per_batch > 0
        assert timing.inference_seconds_per_batch > 0
        assert timing.inference_seconds_per_batch < timing.training_seconds_per_batch
        assert timing.training_seconds_per_task == pytest.approx(
            timing.training_seconds_per_batch / 3
        )

    def test_run_table10_smoke(self):
        result = run_table10(SMOKE, batch_size=10, num_blocks=30)
        assert set(result.timings) == {
            "granite_single", "granite_multi", "ithemal+_single", "ithemal+_multi",
        }
        assert "train s/batch" in result.format_table()
