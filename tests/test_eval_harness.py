"""Tests for the experiment harness (repro.eval.harness) and paper references."""

import numpy as np
import pytest

from repro.eval import paper_reference as paper
from repro.eval.harness import ExperimentHarness, ExperimentScale


class TestExperimentScale:
    def test_quick_and_smoke_presets(self):
        quick = ExperimentScale.quick()
        smoke = ExperimentScale.smoke()
        assert smoke.ithemal_dataset_size < quick.ithemal_dataset_size
        assert smoke.num_training_steps < quick.num_training_steps
        assert quick.small_models and smoke.small_models

    def test_full_preset_uses_paper_models(self):
        full = ExperimentScale.full()
        assert not full.small_models
        assert full.batch_size == 100


class TestExperimentHarness:
    def test_datasets_are_cached(self):
        harness = ExperimentHarness(ExperimentScale.smoke())
        first = harness.ithemal_splits
        second = harness.ithemal_splits
        assert first is second

    def test_bhive_dataset_is_smaller(self):
        harness = ExperimentHarness(ExperimentScale.smoke())
        ithemal_total = (
            len(harness.ithemal_splits.train)
            + len(harness.ithemal_splits.validation)
            + len(harness.ithemal_splits.test)
        )
        bhive_total = (
            len(harness.bhive_splits.train)
            + len(harness.bhive_splits.validation)
            + len(harness.bhive_splits.test)
        )
        assert bhive_total < ithemal_total

    def test_make_model_names(self):
        harness = ExperimentHarness(ExperimentScale.smoke())
        for name in ("granite", "ithemal", "ithemal+"):
            model = harness.make_model(name)
            assert model.tasks == ("ivy_bridge", "haswell", "skylake")
        with pytest.raises(ValueError):
            harness.make_model("bert")

    def test_training_config_reflects_scale(self):
        scale = ExperimentScale.smoke()
        harness = ExperimentHarness(scale)
        config = harness.training_config()
        assert config.num_steps == scale.num_training_steps
        assert config.batch_size == scale.batch_size
        overridden = harness.training_config(loss="huber", num_steps=3)
        assert overridden.loss == "huber" and overridden.num_steps == 3

    def test_train_and_evaluate_smoke(self):
        harness = ExperimentHarness(ExperimentScale.smoke())
        trained = harness.train_standard_model("granite")
        assert trained.name == "granite"
        assert set(trained.test_metrics) == {"ivy_bridge", "haswell", "skylake"}
        assert np.isfinite(trained.average_mape())
        assert len(trained.history.steps) == harness.scale.num_training_steps


class TestPaperReferenceValues:
    """Sanity checks that the transcribed constants match the paper's claims."""

    def test_table5_granite_beats_ithemal_everywhere(self):
        for microarchitecture in paper.MICROARCHITECTURE_DISPLAY_NAMES:
            assert (
                paper.TABLE5_MAPE["granite"][microarchitecture]
                < paper.TABLE5_MAPE["ithemal+"][microarchitecture]
                < paper.TABLE5_MAPE["ithemal"][microarchitecture]
            )

    def test_headline_average_error(self):
        average = np.mean(list(paper.TABLE5_MAPE["granite"].values()))
        assert average == pytest.approx(paper.GRANITE_AVERAGE_TEST_ERROR, abs=0.002)

    def test_table7_best_at_eight_iterations(self):
        for microarchitecture, sweep in paper.TABLE7_MESSAGE_PASSING_MAPE.items():
            assert min(sweep, key=sweep.get) == 8

    def test_table9_mape_is_best_or_near_best_loss(self):
        for microarchitecture, row in paper.TABLE9_LOSS_MAPE.items():
            best = min(row, key=row.get)
            assert best in ("mape", "relative_mse")
            assert row["mape"] <= row["mse"]

    def test_table10_granite_faster_on_gpu(self):
        assert (
            paper.TABLE10_RUNTIME_SECONDS[("granite_single", "gpu_training")]
            < paper.TABLE10_RUNTIME_SECONDS[("ithemal_single", "gpu_training")]
        )
        assert (
            paper.TABLE10_RUNTIME_SECONDS[("granite_multi", "gpu_inference")]
            < paper.TABLE10_RUNTIME_SECONDS[("ithemal+_multi", "gpu_inference")]
        )

    def test_table8_multitask_helps_granite_on_average(self):
        singles = [values[0] for values in paper.TABLE8_MULTI_TASK_MAPE["granite"].values()]
        multis = [values[1] for values in paper.TABLE8_MULTI_TASK_MAPE["granite"].values()]
        assert np.mean(multis) < np.mean(singles)
