"""Tests for the graph network blocks (repro.gnn.blocks)."""

import numpy as np
import pytest

from repro.gnn.blocks import (
    EdgeBlock,
    FullGNBlock,
    GlobalBlock,
    GraphNetwork,
    GraphState,
    GraphTopology,
    NodeBlock,
)
from repro.nn.tensor import Tensor


def make_two_triangle_batch(rng, node_size=6, edge_size=5, global_size=4):
    """Two 3-node cycles packed into one batch."""
    nodes = Tensor(rng.normal(size=(6, node_size)))
    edges = Tensor(rng.normal(size=(6, edge_size)))
    globals_ = Tensor(rng.normal(size=(2, global_size)))
    senders = np.array([0, 1, 2, 3, 4, 5])
    receivers = np.array([1, 2, 0, 4, 5, 3])
    topology = GraphTopology(
        senders=senders,
        receivers=receivers,
        node_graph_ids=np.array([0, 0, 0, 1, 1, 1]),
        edge_graph_ids=np.array([0, 0, 0, 1, 1, 1]),
        num_graphs=2,
    )
    return GraphState(nodes=nodes, edges=edges, globals_=globals_), topology


class TestBlocks:
    def test_edge_block_shape(self, rng):
        state, topology = make_two_triangle_batch(rng)
        block = EdgeBlock(5, 6, 4, [8], 5, rng)
        assert block(state, topology).shape == (6, 5)

    def test_node_block_shape(self, rng):
        state, topology = make_two_triangle_batch(rng)
        edge_block = EdgeBlock(5, 6, 4, [8], 5, rng)
        node_block = NodeBlock(5, 6, 4, [8], 6, rng)
        updated_edges = edge_block(state, topology)
        assert node_block(state, topology, updated_edges).shape == (6, 6)

    def test_global_block_shape(self, rng):
        state, topology = make_two_triangle_batch(rng)
        edges = EdgeBlock(5, 6, 4, [8], 5, rng)(state, topology)
        nodes = NodeBlock(5, 6, 4, [8], 6, rng)(state, topology, edges)
        global_block = GlobalBlock(5, 6, 4, [8], 4, rng)
        assert global_block(state, topology, edges, nodes).shape == (2, 4)

    def test_full_gn_block_preserves_sizes(self, rng):
        state, topology = make_two_triangle_batch(rng)
        block = FullGNBlock(5, 6, 4, [8], rng)
        output = block(state, topology)
        assert output.nodes.shape == state.nodes.shape
        assert output.edges.shape == state.edges.shape
        assert output.globals_.shape == state.globals_.shape

    def test_invalid_aggregation_rejected(self, rng):
        state, topology = make_two_triangle_batch(rng)
        block = NodeBlock(5, 6, 4, [8], 6, rng, aggregation="median")
        edges = EdgeBlock(5, 6, 4, [8], 5, rng)(state, topology)
        with pytest.raises(ValueError):
            block(state, topology, edges)


class TestGraphIsolation:
    """Disconnected graphs in a batch must not influence each other."""

    def test_graphs_in_batch_are_independent(self, rng):
        state, topology = make_two_triangle_batch(rng)
        network = GraphNetwork(5, 6, 4, [8], num_message_passing_iterations=3, rng=rng)
        baseline = network(state, topology)

        perturbed_nodes = state.nodes.data.copy()
        perturbed_nodes[3:] += 10.0  # perturb only the second graph
        perturbed_state = GraphState(
            nodes=Tensor(perturbed_nodes),
            edges=Tensor(state.edges.data.copy()),
            globals_=Tensor(state.globals_.data.copy()),
        )
        perturbed = network(perturbed_state, topology)

        np.testing.assert_allclose(baseline.nodes.data[:3], perturbed.nodes.data[:3])
        np.testing.assert_allclose(baseline.globals_.data[0], perturbed.globals_.data[0])
        assert not np.allclose(baseline.nodes.data[3:], perturbed.nodes.data[3:])


class TestMessagePassing:
    def test_information_propagates_n_hops_per_iteration(self, rng):
        """A change at one node reaches its 2-hop neighbour only after two
        message passing iterations (edges propagate one hop per iteration)."""
        node_size, edge_size, global_size = 4, 4, 4
        nodes = np.zeros((3, node_size))
        edges = np.zeros((2, edge_size))
        globals_ = np.zeros((1, global_size))
        senders = np.array([0, 1])
        receivers = np.array([1, 2])
        topology = GraphTopology(
            senders=senders,
            receivers=receivers,
            node_graph_ids=np.zeros(3, dtype=np.int64),
            edge_graph_ids=np.zeros(2, dtype=np.int64),
            num_graphs=1,
        )

        def output_at_node2(num_iterations, source_value):
            state = GraphState(
                nodes=Tensor(np.vstack([[source_value] * node_size, nodes[1:]])),
                edges=Tensor(edges.copy()),
                globals_=Tensor(globals_.copy()),
            )
            network = GraphNetwork(
                edge_size, node_size, global_size, [8],
                num_message_passing_iterations=num_iterations,
                rng=np.random.default_rng(0),
                use_residual=True,
            )
            # Disable the global pathway so information can only travel
            # along edges (the global feature would otherwise shortcut it).
            return network(state, topology).nodes.data[2]

        one_hop_a = output_at_node2(1, 0.0)
        one_hop_b = output_at_node2(1, 100.0)
        np.testing.assert_allclose(one_hop_a, one_hop_b, atol=1e-8)

        two_hop_a = output_at_node2(2, 0.0)
        two_hop_b = output_at_node2(2, 100.0)
        assert not np.allclose(two_hop_a, two_hop_b)

    def test_shared_weights_reuse_one_block(self, rng):
        network = GraphNetwork(4, 4, 4, [8], 5, rng, share_weights=True)
        assert len(network.blocks) == 1

    def test_unshared_weights_make_one_block_per_iteration(self, rng):
        network = GraphNetwork(4, 4, 4, [8], 3, rng, share_weights=False)
        assert len(network.blocks) == 3

    def test_zero_iterations_rejected(self, rng):
        with pytest.raises(ValueError):
            GraphNetwork(4, 4, 4, [8], 0, rng)

    def test_gradients_flow_to_all_inputs(self, rng):
        state, topology = make_two_triangle_batch(rng)
        nodes = Tensor(state.nodes.data, requires_grad=True)
        edges = Tensor(state.edges.data, requires_grad=True)
        globals_ = Tensor(state.globals_.data, requires_grad=True)
        network = GraphNetwork(5, 6, 4, [8], 2, rng)
        output = network(GraphState(nodes, edges, globals_), topology)
        (output.nodes.sum() + output.globals_.sum()).backward()
        assert nodes.grad is not None and np.abs(nodes.grad).sum() > 0
        assert edges.grad is not None and np.abs(edges.grad).sum() > 0
        assert globals_.grad is not None and np.abs(globals_.grad).sum() > 0

    def test_sum_vs_mean_aggregation_differ(self, rng):
        state, topology = make_two_triangle_batch(rng)
        sum_network = GraphNetwork(5, 6, 4, [8], 1, np.random.default_rng(7), aggregation="sum")
        mean_network = GraphNetwork(5, 6, 4, [8], 1, np.random.default_rng(7), aggregation="mean")
        sum_out = sum_network(state, topology).globals_.data
        mean_out = mean_network(state, topology).globals_.data
        assert not np.allclose(sum_out, mean_out)
