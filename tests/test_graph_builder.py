"""Tests for the GRANITE graph construction (repro.graph.builder).

These tests check the encoding rules of Section 3.1 / Tables 2-3 of the
paper, in particular on the Figure 1 example block.
"""


from repro.graph.builder import GraphBuilder, GraphBuilderConfig, build_block_graph
from repro.graph.types import EdgeType, NodeType, SpecialToken
from repro.isa.basic_block import BasicBlock


def edges_of_type(graph, edge_type):
    return [edge for edge in graph.edges if edge.edge_type is edge_type]


def nodes_of_type(graph, node_type):
    return [
        (index, node) for index, node in enumerate(graph.nodes) if node.node_type is node_type
    ]


class TestFigure1Encoding:
    """The worked example of Figure 1: MOV RAX, 12345 / ADD [RAX+16], EBX."""

    def test_one_mnemonic_node_per_instruction(self, figure1_block):
        graph = build_block_graph(figure1_block)
        mnemonic_nodes = nodes_of_type(graph, NodeType.MNEMONIC)
        assert len(mnemonic_nodes) == 2
        assert [node.token for _, node in mnemonic_nodes] == ["MOV", "ADD"]
        assert graph.instruction_node_indices == [index for index, _ in mnemonic_nodes]

    def test_structural_edge_between_consecutive_instructions(self, figure1_block):
        graph = build_block_graph(figure1_block)
        structural = edges_of_type(graph, EdgeType.STRUCTURAL_DEPENDENCY)
        assert len(structural) == 1
        mov_node, add_node = graph.instruction_node_indices
        assert structural[0].sender == mov_node
        assert structural[0].receiver == add_node

    def test_immediate_feeds_mov(self, figure1_block):
        graph = build_block_graph(figure1_block)
        mov_node = graph.instruction_node_indices[0]
        immediate_inputs = [
            edge
            for edge in edges_of_type(graph, EdgeType.INPUT_OPERAND)
            if edge.receiver == mov_node
            and graph.nodes[edge.sender].token == SpecialToken.IMMEDIATE.value
        ]
        assert len(immediate_inputs) == 1

    def test_mov_produces_rax_value_consumed_by_address(self, figure1_block):
        graph = build_block_graph(figure1_block)
        mov_node = graph.instruction_node_indices[0]
        rax_outputs = [
            edge
            for edge in edges_of_type(graph, EdgeType.OUTPUT_OPERAND)
            if edge.sender == mov_node and graph.nodes[edge.receiver].token == "RAX"
        ]
        assert len(rax_outputs) == 1
        rax_value_node = rax_outputs[0].receiver
        address_base_edges = [
            edge
            for edge in edges_of_type(graph, EdgeType.ADDRESS_BASE)
            if edge.sender == rax_value_node
        ]
        assert len(address_base_edges) == 1
        address_node = address_base_edges[0].receiver
        assert graph.nodes[address_node].node_type is NodeType.ADDRESS_COMPUTATION

    def test_address_displacement_edge_exists(self, figure1_block):
        graph = build_block_graph(figure1_block)
        assert len(edges_of_type(graph, EdgeType.ADDRESS_DISPLACEMENT)) == 1

    def test_memory_read_and_write_are_distinct_nodes(self, figure1_block):
        """The ADD reads and writes memory; the two values are distinct nodes."""
        graph = build_block_graph(figure1_block)
        memory_nodes = nodes_of_type(graph, NodeType.MEMORY_VALUE)
        assert len(memory_nodes) == 2
        add_node = graph.instruction_node_indices[1]
        reads = [
            edge for edge in edges_of_type(graph, EdgeType.INPUT_OPERAND)
            if edge.receiver == add_node
            and graph.nodes[edge.sender].node_type is NodeType.MEMORY_VALUE
        ]
        writes = [
            edge for edge in edges_of_type(graph, EdgeType.OUTPUT_OPERAND)
            if edge.sender == add_node
            and graph.nodes[edge.receiver].node_type is NodeType.MEMORY_VALUE
        ]
        assert len(reads) == 1 and len(writes) == 1
        assert reads[0].sender != writes[0].receiver

    def test_add_writes_eflags(self, figure1_block):
        graph = build_block_graph(figure1_block)
        add_node = graph.instruction_node_indices[1]
        eflags_writes = [
            edge for edge in edges_of_type(graph, EdgeType.OUTPUT_OPERAND)
            if edge.sender == add_node and graph.nodes[edge.receiver].token == "EFLAGS"
        ]
        assert len(eflags_writes) == 1


class TestEncodingRules:
    def test_value_node_has_at_most_one_producer(self, sample_blocks):
        for block in sample_blocks[:25]:
            graph = build_block_graph(block)
            incoming_output_edges = {}
            for edge in graph.edges:
                if edge.edge_type is EdgeType.OUTPUT_OPERAND:
                    incoming_output_edges.setdefault(edge.receiver, 0)
                    incoming_output_edges[edge.receiver] += 1
            assert all(count == 1 for count in incoming_output_edges.values())

    def test_register_rewrite_creates_new_value_node(self):
        block = BasicBlock.from_text("MOV RAX, 1\nMOV RAX, 2\nADD RBX, RAX")
        graph = build_block_graph(block)
        rax_nodes = [node for node in graph.nodes if node.token == "RAX"]
        assert len(rax_nodes) == 2

    def test_reader_connects_to_most_recent_value(self):
        block = BasicBlock.from_text("MOV RAX, 1\nMOV RAX, 2\nADD RBX, RAX")
        graph = build_block_graph(block)
        add_node = graph.instruction_node_indices[2]
        second_mov = graph.instruction_node_indices[1]
        rax_inputs = [
            edge for edge in graph.edges
            if edge.edge_type is EdgeType.INPUT_OPERAND
            and edge.receiver == add_node
            and graph.nodes[edge.sender].token == "RAX"
        ]
        assert len(rax_inputs) == 1
        producer_edges = [
            edge for edge in graph.edges
            if edge.edge_type is EdgeType.OUTPUT_OPERAND
            and edge.receiver == rax_inputs[0].sender
        ]
        assert producer_edges[0].sender == second_mov

    def test_live_in_register_has_no_producer(self):
        block = BasicBlock.from_text("ADD RAX, RBX")
        graph = build_block_graph(block)
        rbx_nodes = [index for index, node in enumerate(graph.nodes) if node.token == "RBX"]
        assert len(rbx_nodes) == 1
        assert not any(
            edge.receiver == rbx_nodes[0] and edge.edge_type is EdgeType.OUTPUT_OPERAND
            for edge in graph.edges
        )

    def test_aliased_register_read_uses_same_value_node(self):
        block = BasicBlock.from_text("MOV EAX, 1\nADD RBX, RAX")
        graph = build_block_graph(block)
        # Only the EAX value produced by MOV plus the live-in RBX exist.
        eax_like = [node for node in graph.nodes if node.token in ("EAX", "RAX")]
        assert len(eax_like) == 1

    def test_prefix_node_connected_to_mnemonic(self):
        block = BasicBlock.from_text("LOCK ADD QWORD PTR [RAX], RBX")
        graph = build_block_graph(block)
        prefix_nodes = nodes_of_type(graph, NodeType.PREFIX)
        assert len(prefix_nodes) == 1
        prefix_index = prefix_nodes[0][0]
        assert any(
            edge.sender == prefix_index and edge.edge_type is EdgeType.PREFIX
            for edge in graph.edges
        )

    def test_structural_edges_form_a_chain(self, paper_example_block):
        graph = build_block_graph(paper_example_block)
        structural = edges_of_type(graph, EdgeType.STRUCTURAL_DEPENDENCY)
        assert len(structural) == len(paper_example_block) - 1

    def test_segment_override_creates_segment_edge(self):
        block = BasicBlock.from_text("MOV RAX, QWORD PTR FS:[0x28]")
        graph = build_block_graph(block)
        assert len(edges_of_type(graph, EdgeType.ADDRESS_SEGMENT)) == 1

    def test_scaled_index_creates_index_edge(self):
        block = BasicBlock.from_text("MOV RAX, QWORD PTR [RBX + RCX*8]")
        graph = build_block_graph(block)
        assert len(edges_of_type(graph, EdgeType.ADDRESS_INDEX)) == 1
        assert len(edges_of_type(graph, EdgeType.ADDRESS_BASE)) == 1

    def test_fp_immediate_node(self):
        block = BasicBlock.from_text("FOO XMM0, 2.5")
        graph = build_block_graph(block)
        assert len(nodes_of_type(graph, NodeType.FP_IMMEDIATE)) == 1

    def test_empty_block_produces_empty_graph(self):
        graph = build_block_graph(BasicBlock([]))
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.num_instructions == 0

    def test_edge_indices_always_valid(self, sample_blocks):
        for block in sample_blocks:
            graph = build_block_graph(block)
            for edge in graph.edges:
                assert 0 <= edge.sender < graph.num_nodes
                assert 0 <= edge.receiver < graph.num_nodes

    def test_identifier_propagates(self, figure1_block):
        assert build_block_graph(figure1_block).identifier == "figure1"


class TestGraphBuilderConfig:
    def test_structural_only_graph_has_no_data_edges(self, paper_example_block):
        config = GraphBuilderConfig(
            include_structural_edges=True,
            include_data_edges=False,
            include_address_edges=False,
            include_implicit_operands=False,
        )
        graph = GraphBuilder(config).build(paper_example_block)
        data_edges = [
            edge for edge in graph.edges
            if edge.edge_type in (EdgeType.INPUT_OPERAND, EdgeType.OUTPUT_OPERAND)
        ]
        assert data_edges == []
        assert len(edges_of_type(graph, EdgeType.STRUCTURAL_DEPENDENCY)) == len(paper_example_block) - 1

    def test_no_structural_edges(self, paper_example_block):
        config = GraphBuilderConfig(include_structural_edges=False)
        graph = GraphBuilder(config).build(paper_example_block)
        assert edges_of_type(graph, EdgeType.STRUCTURAL_DEPENDENCY) == []

    def test_no_implicit_operands_removes_eflags(self, paper_example_block):
        config = GraphBuilderConfig(include_implicit_operands=False)
        graph = GraphBuilder(config).build(paper_example_block)
        assert not any(node.token == "EFLAGS" for node in graph.nodes)

    def test_networkx_export(self, figure1_block):
        graph = build_block_graph(figure1_block)
        exported = graph.to_networkx()
        assert exported.number_of_nodes() == graph.num_nodes
        assert exported.number_of_edges() == graph.num_edges
