"""Tests for graph batching (repro.graph.graph.pack_graphs) and BlockGraph."""

import numpy as np
import pytest

from repro.graph.builder import build_block_graph
from repro.graph.graph import BlockGraph, GraphsTuple, pack_graphs
from repro.graph.types import EDGE_TYPE_INDEX, EdgeType, NodeType
from repro.graph.vocabulary import build_default_vocabulary


@pytest.fixture(scope="module")
def vocabulary():
    return build_default_vocabulary()


class TestBlockGraph:
    def test_add_node_and_edge(self):
        graph = BlockGraph()
        first = graph.add_node("ADD", NodeType.MNEMONIC, 0)
        second = graph.add_node("RAX", NodeType.REGISTER, 0)
        graph.add_edge(first, second, EdgeType.OUTPUT_OPERAND)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1

    def test_add_edge_with_bad_index_raises(self):
        graph = BlockGraph()
        graph.add_node("ADD", NodeType.MNEMONIC, 0)
        with pytest.raises(IndexError):
            graph.add_edge(0, 5, EdgeType.INPUT_OPERAND)

    def test_edge_type_histogram(self, figure1_block):
        graph = build_block_graph(figure1_block)
        histogram = graph.edge_type_histogram()
        assert histogram.sum() == graph.num_edges
        assert histogram[EDGE_TYPE_INDEX[EdgeType.STRUCTURAL_DEPENDENCY]] == 1

    def test_tokens_in_node_order(self, figure1_block):
        graph = build_block_graph(figure1_block)
        assert graph.tokens()[graph.instruction_node_indices[0]] == "MOV"


class TestPackGraphs:
    def test_single_graph_pack(self, figure1_block, vocabulary):
        graph = build_block_graph(figure1_block)
        packed = pack_graphs([graph], vocabulary)
        assert packed.num_graphs == 1
        assert packed.num_nodes == graph.num_nodes
        assert packed.num_edges == graph.num_edges
        assert packed.num_instructions == 2
        assert packed.globals_features.shape == (1, len(vocabulary) + len(EdgeType))

    def test_multi_graph_offsets(self, sample_blocks, vocabulary):
        graphs = [build_block_graph(block) for block in sample_blocks[:5]]
        packed = pack_graphs(graphs, vocabulary)
        assert packed.num_graphs == 5
        assert packed.num_nodes == sum(graph.num_nodes for graph in graphs)
        assert packed.num_edges == sum(graph.num_edges for graph in graphs)
        # node_graph_ids must be non-decreasing and partition the nodes.
        counts = np.bincount(packed.node_graph_ids, minlength=5)
        assert list(counts) == [graph.num_nodes for graph in graphs]

    def test_edges_stay_within_their_graph(self, sample_blocks, vocabulary):
        graphs = [build_block_graph(block) for block in sample_blocks[:8]]
        packed = pack_graphs(graphs, vocabulary)
        assert np.array_equal(
            packed.node_graph_ids[packed.senders], packed.edge_graph_ids
        )
        assert np.array_equal(
            packed.node_graph_ids[packed.receivers], packed.edge_graph_ids
        )

    def test_instruction_nodes_are_mnemonics(self, sample_blocks, vocabulary):
        graphs = [build_block_graph(block) for block in sample_blocks[:5]]
        packed = pack_graphs(graphs, vocabulary)
        mnemonic_ids = {
            vocabulary.id_of(instruction.mnemonic)
            for block in sample_blocks[:5]
            for instruction in block
        }
        observed = set(packed.node_token_ids[packed.instruction_node_indices].tolist())
        assert observed <= mnemonic_ids | {vocabulary.unknown_id}

    def test_instruction_counts_match_blocks(self, sample_blocks, vocabulary):
        blocks = sample_blocks[:6]
        graphs = [build_block_graph(block) for block in blocks]
        packed = pack_graphs(graphs, vocabulary)
        counts = np.bincount(packed.instruction_graph_ids, minlength=len(blocks))
        assert list(counts) == [len(block) for block in blocks]

    def test_global_features_are_normalised_frequencies(self, figure1_block, vocabulary):
        graph = build_block_graph(figure1_block)
        packed = pack_graphs([graph], vocabulary)
        token_part = packed.globals_features[0, : len(vocabulary)]
        edge_part = packed.globals_features[0, len(vocabulary):]
        assert token_part.sum() == pytest.approx(1.0)
        assert edge_part.sum() == pytest.approx(1.0)
        assert np.all(packed.globals_features >= 0.0)

    def test_empty_list_raises(self, vocabulary):
        with pytest.raises(ValueError):
            pack_graphs([], vocabulary)

    def test_validate_catches_bad_indices(self, figure1_block, vocabulary):
        graph = build_block_graph(figure1_block)
        packed = pack_graphs([graph], vocabulary)
        broken = GraphsTuple(
            node_token_ids=packed.node_token_ids,
            node_graph_ids=packed.node_graph_ids,
            edge_type_ids=packed.edge_type_ids,
            senders=packed.senders + packed.num_nodes,  # out of range
            receivers=packed.receivers,
            edge_graph_ids=packed.edge_graph_ids,
            globals_features=packed.globals_features,
            instruction_node_indices=packed.instruction_node_indices,
            instruction_graph_ids=packed.instruction_graph_ids,
            num_graphs=packed.num_graphs,
        )
        with pytest.raises(ValueError):
            broken.validate()

    def test_packing_is_deterministic(self, sample_blocks, vocabulary):
        graphs = [build_block_graph(block) for block in sample_blocks[:4]]
        first = pack_graphs(graphs, vocabulary)
        second = pack_graphs(graphs, vocabulary)
        assert np.array_equal(first.node_token_ids, second.node_token_ids)
        assert np.array_equal(first.senders, second.senders)
        assert np.array_equal(first.globals_features, second.globals_features)
