"""Tests for the token vocabulary (repro.graph.vocabulary)."""

import pytest

from repro.graph.types import SpecialToken
from repro.graph.vocabulary import Vocabulary, build_default_vocabulary


class TestVocabulary:
    def test_contains_special_tokens(self):
        vocabulary = build_default_vocabulary()
        for special in SpecialToken:
            assert special.value in vocabulary

    def test_contains_mnemonics_prefixes_registers(self):
        vocabulary = build_default_vocabulary()
        for token in ("ADD", "MOV", "LOCK", "REP", "RAX", "XMM0", "EFLAGS"):
            assert token in vocabulary

    def test_id_round_trip(self):
        vocabulary = build_default_vocabulary()
        token_id = vocabulary.id_of("ADD")
        assert vocabulary.token_of(token_id) == "ADD"

    def test_unknown_token_maps_to_unk(self):
        vocabulary = build_default_vocabulary()
        assert vocabulary.id_of("TOTALLY_UNKNOWN") == vocabulary.unknown_id

    def test_encode_sequence(self):
        vocabulary = build_default_vocabulary()
        ids = vocabulary.encode(["ADD", "RAX", "NOPE"])
        assert len(ids) == 3
        assert ids[2] == vocabulary.unknown_id

    def test_ids_are_dense_and_unique(self):
        vocabulary = build_default_vocabulary()
        ids = {vocabulary.id_of(token) for token in vocabulary.tokens}
        assert ids == set(range(len(vocabulary)))

    def test_extra_tokens_are_appended(self):
        vocabulary = build_default_vocabulary(extra_tokens=["<S>", "<D>"])
        assert "<S>" in vocabulary and "<D>" in vocabulary

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(tokens=("A", "A"))

    def test_json_round_trip(self):
        vocabulary = build_default_vocabulary()
        restored = Vocabulary.from_json(vocabulary.to_json())
        assert restored.tokens == vocabulary.tokens
        assert restored.id_of("ADD") == vocabulary.id_of("ADD")

    def test_from_tokens_deduplicates_and_keeps_specials_first(self):
        vocabulary = Vocabulary.from_tokens(["FOO", "BAR", "FOO"])
        assert vocabulary.tokens[: len(SpecialToken)] == tuple(s.value for s in SpecialToken)
        assert vocabulary.tokens.count("FOO") == 1

    def test_default_vocabulary_is_deterministic(self):
        assert build_default_vocabulary().tokens == build_default_vocabulary().tokens
