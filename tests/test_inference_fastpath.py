"""Regression tests for the no-grad inference fast path.

The fast path dispatches model forwards to raw numpy arrays whenever
gradients are disabled (no autodiff tape, no Tensor wrappers).  These tests
pin down the properties the eval harness and the serving layer rely on:

* batched predictions are numerically identical to per-block predictions
  and to the tape-tensor ("seed") path, for both model families;
* ``no_grad`` restores gradient recording even when the body raises;
* ``predict`` handles empty inputs and micro-batching;
* the encode caches return correct results after retraining changes the
  weights (graphs depend only on the block text, never on the weights).
"""

import numpy as np
import pytest

from repro.data.datasets import build_ithemal_like_dataset
from repro.data.synthetic import BlockGenerator
from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.nn import losses
from repro.nn.tensor import (
    Tensor,
    fast_path_active,
    is_grad_enabled,
    no_grad,
    use_fast_path,
)
from repro.testing.equivalence import assert_allclose_for_dtype
from repro.training.trainer import Trainer


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(seed=11).generate_blocks(48)


@pytest.fixture(scope="module", params=["granite", "ithemal", "ithemal+"])
def model(request):
    return create_model(request.param, small=True, seed=3)


def _assert_close(model, actual, desired, strict_rtol, against_tape=False):
    """Dtype-aware equality: bit-tight in float64, tolerance in float32.

    The model fixture honours the ``INFERENCE_DTYPE`` environment variable
    (the CI mixed-precision leg), where exact identities become tolerance
    contracts; float32-vs-float64-*tape* comparisons additionally carry the
    full single-precision accumulation error (bounded much tighter by
    ``tests/equivalence``), so they get a looser budget.
    """
    if against_tape:
        assert_allclose_for_dtype(
            actual, desired, model.inference_dtype, strict_rtol, rtol32=1e-3, atol32=1e-2
        )
    else:
        assert_allclose_for_dtype(actual, desired, model.inference_dtype, strict_rtol)


class TestNoGradSwitch:
    def test_no_grad_disables_and_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            assert fast_path_active()
        assert is_grad_enabled()
        assert not fast_path_active()

    def test_no_grad_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_use_fast_path_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_fast_path(False):
                raise RuntimeError("boom")
        with no_grad():
            assert fast_path_active()

    def test_gradients_flow_after_fast_path_inference(self, blocks):
        """A fast-path predict must not poison subsequent training steps."""
        model = create_model("granite", small=True, seed=0)
        model.predict(blocks[:4])
        batch = model.encode_blocks(blocks[:4])
        predictions = model.forward(batch)
        loss = predictions[model.tasks[0]].sum()
        assert isinstance(loss, Tensor)
        model.zero_grad()
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())


class TestPredictBatching:
    def test_empty_predict(self, model):
        predictions = model.predict([])
        assert set(predictions) == set(model.tasks)
        for task in model.tasks:
            assert predictions[task].shape == (0,)

    def test_invalid_batch_size_rejected(self, model, blocks):
        with pytest.raises(ValueError):
            model.predict(blocks[:2], batch_size=0)

    def test_batched_matches_single(self, model, blocks):
        batched = model.predict(blocks)
        for task in model.tasks:
            assert batched[task].shape == (len(blocks),)
        singles = {task: [] for task in model.tasks}
        for block in blocks:
            single = model.predict([block])
            for task in model.tasks:
                singles[task].append(single[task][0])
        for task in model.tasks:
            _assert_close(model, batched[task], np.array(singles[task]), 1e-9)

    def test_micro_batching_matches_one_batch(self, model, blocks):
        full = model.predict(blocks)
        micro = model.predict(blocks, batch_size=7)
        for task in model.tasks:
            _assert_close(model, full[task], micro[task], 1e-12)

    def test_fast_path_matches_tape_path(self, model, blocks):
        fast = model.predict(blocks)
        with use_fast_path(False):
            tape = model.predict(blocks)
        for task in model.tasks:
            _assert_close(model, fast[task], tape[task], 1e-12, against_tape=True)

    def test_fast_path_matches_grad_enabled_forward(self, model, blocks):
        fast = model.predict(blocks)
        predictions = model.forward(model.encode_blocks(blocks))
        for task in model.tasks:
            _assert_close(
                model,
                fast[task],
                predictions[task].numpy().reshape(-1),
                1e-12,
                against_tape=True,
            )


class TestEncodeCache:
    def test_cache_hits_on_repeated_blocks(self, blocks):
        model = create_model("granite", small=True, seed=0)
        model.prediction_cache_size = 0  # exercise the encode caches
        model.predict(blocks)
        stats_after_miss = model.encode_cache_stats
        assert stats_after_miss["graph_misses"] == len(blocks)
        model.predict(blocks)
        stats_after_hit = model.encode_cache_stats
        assert stats_after_hit["batch_hits"] >= 1
        # The batch-level cache absorbed the lookup; no new graph builds.
        assert stats_after_hit["graph_misses"] == stats_after_miss["graph_misses"]

    def test_cache_cleared(self, blocks):
        model = create_model("granite", small=True, seed=0)
        model.prediction_cache_size = 0
        model.predict(blocks[:4])
        model.clear_encode_cache()
        model.predict(blocks[:4])
        assert model.encode_cache_stats["graph_misses"] == 8

    def test_duplicate_blocks_computed_once(self, blocks):
        model = create_model("granite", small=True, seed=0)
        repeated = [blocks[0], blocks[1], blocks[0], blocks[0], blocks[1]]
        predictions = model.predict(repeated)
        # Only the two distinct blocks were encoded and forwarded.
        assert model.encode_cache_stats["graph_misses"] == 2
        for task in model.tasks:
            assert predictions[task][0] == predictions[task][2] == predictions[task][3]
            assert predictions[task][1] == predictions[task][4]
        expected = model.predict([blocks[0], blocks[1]])
        for task in model.tasks:
            np.testing.assert_allclose(
                predictions[task][:2], expected[task], rtol=1e-12
            )

    def test_caches_disabled_context(self, blocks):
        model = create_model("granite", small=True, seed=0)
        model.predict(blocks[:4])
        with model.caches_disabled():
            model.predict(blocks[:4])
            assert model.encode_cache_stats["graph_misses"] >= 8
            assert len(model._graph_cache) == 0
        # Capacities restored afterwards.
        assert model.prediction_cache_size > 0
        assert model._graph_cache.maxsize > 0

    def test_prediction_cache_serves_repeats(self, blocks):
        model = create_model("granite", small=True, seed=0)
        first = model.predict(blocks)
        second = model.predict(blocks)  # served entirely from the cache
        stats = model.prediction_cache_stats
        assert stats["hits"] >= len(blocks)
        for task in model.tasks:
            np.testing.assert_array_equal(first[task], second[task])

    def test_prediction_cache_invalidated_by_weight_update(self, blocks):
        model = create_model("granite", small=True, seed=0)
        before = model.predict(blocks[:4])
        # Any state-dict load counts as a weight update and must drop the
        # cached predictions.
        state = model.state_dict()
        for name in state:
            state[name] = state[name] + 0.05
        model.load_state_dict(state)
        after = model.predict(blocks[:4])
        assert any(
            not np.allclose(before[task], after[task]) for task in model.tasks
        )
        fresh = create_model("granite", small=True, seed=0)
        fresh.load_state_dict(state)
        expected = fresh.predict(blocks[:4])
        for task in model.tasks:
            np.testing.assert_allclose(after[task], expected[task], rtol=1e-9)

    @pytest.mark.parametrize("name", ["granite", "ithemal+"])
    def test_cache_correct_after_retraining(self, name):
        """Warm caches must keep predictions correct after weights change."""
        dataset = build_ithemal_like_dataset(64, seed=5)
        train_blocks = dataset.blocks()
        model = create_model(name, small=True, seed=1)
        before = model.predict(train_blocks)

        trainer = Trainer(model, TrainingConfig(num_steps=5, batch_size=16, seed=0))
        trainer.train(dataset)
        after = model.predict(train_blocks)  # served from warm encode caches
        assert any(
            not np.allclose(before[task], after[task]) for task in model.tasks
        ), "training changed no prediction; cache test is vacuous"

        fresh = create_model(name, small=True, seed=1)
        fresh.load_state_dict(model.state_dict())
        expected = fresh.predict(train_blocks)  # cold caches, same weights
        for task in model.tasks:
            np.testing.assert_allclose(after[task], expected[task], rtol=1e-9)


class TestLossZeroTargetGuard:
    def test_mape_ignores_zero_targets(self):
        predicted = Tensor(np.array([2.0, 5.0, 1.0]))
        actual = Tensor(np.array([1.0, 0.0, 2.0]))
        value = float(losses.mean_absolute_percentage_error(predicted, actual).item())
        # mean over the two valid targets: (1/1 + 1/2) / 2
        assert value == pytest.approx(0.75, rel=1e-6)

    def test_mape_all_zero_targets_is_finite_zero(self):
        predicted = Tensor(np.array([3.0, -4.0]))
        actual = Tensor(np.zeros(2))
        value = float(losses.mean_absolute_percentage_error(predicted, actual).item())
        assert value == 0.0

    @pytest.mark.parametrize(
        "loss_name", ["mape", "relative_mse", "relative_huber"]
    )
    def test_relative_losses_share_the_guard(self, loss_name):
        loss_fn = losses.LOSS_FUNCTIONS[loss_name]
        predicted = Tensor(np.array([2.0, 7.5, 1.0]))
        with_zero = float(
            loss_fn(predicted, Tensor(np.array([1.0, 0.0, 2.0]))).item()
        )
        # A zero target must not contribute an |error|/epsilon ~ 1e6 term.
        assert with_zero < 1e3

    def test_guarded_mape_still_differentiable(self):
        predicted = Tensor(np.array([2.0, 5.0, 1.0]), requires_grad=True)
        actual = Tensor(np.array([1.0, 0.0, 2.0]))
        loss = losses.mean_absolute_percentage_error(predicted, actual)
        loss.backward()
        assert predicted.grad is not None
        # No gradient flows through the zero-target entry.
        assert predicted.grad[1] == 0.0
        assert predicted.grad[0] != 0.0
