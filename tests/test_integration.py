"""End-to-end integration tests.

These exercise the whole pipeline — dataset generation, graph encoding,
training, checkpoint selection, evaluation, serialization — the way the
examples and benchmarks use it, at a size that stays fast.
"""

import numpy as np
import pytest

from repro.data.datasets import build_ithemal_like_dataset

pytestmark = pytest.mark.slow  # full training loops; skipped by -m "not slow"
from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.training.trainer import Trainer, evaluate_model
from repro.uarch.ports import MICROARCHITECTURES
from repro.uarch.scheduler import ThroughputOracle


@pytest.fixture(scope="module")
def trained_granite():
    """A GRANITE model trained briefly on a small dataset (shared)."""
    dataset = build_ithemal_like_dataset(240, seed=21)
    splits = dataset.paper_splits(seed=0)
    model = create_model("granite", small=True, seed=0)
    trainer = Trainer(
        model,
        TrainingConfig(num_steps=120, batch_size=32, validation_interval=30, seed=0),
    )
    history = trainer.train(splits.train, splits.validation)
    return model, splits, history


class TestEndToEndTraining:
    def test_training_beats_trivial_baselines(self, trained_granite):
        """After a short training run, GRANITE must beat both the untrained
        model and the constant mean predictor on held-out blocks."""
        model, splits, _ = trained_granite
        metrics = evaluate_model(model, splits.test)

        untrained = create_model("granite", small=True, seed=99)
        untrained_metrics = evaluate_model(untrained, splits.test)

        for task in model.tasks:
            actual = splits.test.throughputs(task)
            mean_prediction = np.full_like(actual, splits.train.throughputs(task).mean())
            mean_mape = float(np.mean(np.abs(actual - mean_prediction) / actual))
            assert metrics[task].mape < untrained_metrics[task].mape
            assert metrics[task].mape < mean_mape

    def test_predictions_correlate_with_ground_truth(self, trained_granite):
        model, splits, _ = trained_granite
        metrics = evaluate_model(model, splits.test)
        for task in model.tasks:
            assert metrics[task].spearman > 0.5
            assert metrics[task].pearson > 0.5

    def test_validation_history_recorded(self, trained_granite):
        _, _, history = trained_granite
        assert history.best_step > 0
        assert not history.diverged()
        assert history.total_seconds > 0

    def test_checkpoint_round_trip_preserves_predictions(self, trained_granite, tmp_path):
        model, splits, _ = trained_granite
        path = str(tmp_path / "granite.npz")
        save_checkpoint(model, path)
        clone = create_model("granite", small=True, seed=123)
        load_checkpoint(clone, path)
        blocks = splits.test.blocks()[:10]
        original = model.predict(blocks)
        restored = clone.predict(blocks)
        for task in model.tasks:
            np.testing.assert_allclose(original[task], restored[task], rtol=1e-10)

    def test_model_predictions_track_oracle_ordering(self, trained_granite):
        """The trained model should rank a trivially cheap block below an
        expensive one, mirroring the analytical oracle."""
        from repro.isa.basic_block import BasicBlock

        model, _, _ = trained_granite
        cheap = BasicBlock.from_text("ADD RAX, RBX")
        expensive = BasicBlock.from_text("\n".join(["MULSD XMM0, XMM1"] * 16))
        cheap_prediction = model.predict_single(cheap)
        expensive_prediction = model.predict_single(expensive)
        for task in model.tasks:
            assert expensive_prediction[task] > cheap_prediction[task]

    def test_oracle_and_dataset_agree_on_units(self, trained_granite):
        """Dataset labels are ~100x the oracle's per-iteration estimate."""
        _, splits, _ = trained_granite
        sample = splits.test[0]
        oracle = ThroughputOracle(MICROARCHITECTURES["haswell"])
        cycles = oracle.throughput(sample.block)
        assert sample.throughput("haswell") == pytest.approx(cycles * 100, rel=0.6)


class TestMultiTaskIntegration:
    def test_single_task_and_multi_task_models_coexist(self):
        dataset = build_ithemal_like_dataset(80, seed=5)
        splits = dataset.paper_splits(seed=0)
        single = create_model("granite", tasks=("haswell",), small=True, seed=0)
        multi = create_model("granite", small=True, seed=0)
        for model in (single, multi):
            trainer = Trainer(model, TrainingConfig(num_steps=10, batch_size=16, seed=0))
            trainer.train(splits.train)
        assert set(evaluate_model(single, splits.test)) == {"haswell"}
        assert set(evaluate_model(multi, splits.test)) == {"ivy_bridge", "haswell", "skylake"}

    def test_ithemal_plus_trains_end_to_end(self):
        dataset = build_ithemal_like_dataset(80, seed=6)
        splits = dataset.paper_splits(seed=0)
        model = create_model("ithemal+", small=True, seed=0)
        trainer = Trainer(model, TrainingConfig(num_steps=30, batch_size=16, seed=0))
        history = trainer.train(splits.train)
        assert history.loss_curve()[-10:].mean() < history.loss_curve()[:5].mean()
        metrics = evaluate_model(model, splits.test)
        assert all(np.isfinite(metric.mape) for metric in metrics.values())
