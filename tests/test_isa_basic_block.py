"""Tests for BasicBlock and its dependency analysis (repro.isa.basic_block)."""

import pytest

from repro.isa.basic_block import (
    BasicBlock,
    FLAGS_FAMILY,
    MEMORY_LOCATION,
    instruction_accesses,
)
from repro.isa.instructions import Instruction
from repro.isa.parser import parse_instruction


class TestInstructionAccesses:
    def test_add_reads_and_writes_destination(self):
        access = instruction_accesses(parse_instruction("ADD RAX, RBX"))
        assert {"RAX", "RBX"} <= access.reads
        assert "RAX" in access.writes
        assert FLAGS_FAMILY in access.writes

    def test_mov_does_not_read_destination(self):
        access = instruction_accesses(parse_instruction("MOV RAX, RBX"))
        assert "RAX" not in access.reads
        assert "RAX" in access.writes

    def test_register_aliasing_uses_families(self):
        access = instruction_accesses(parse_instruction("ADD EAX, EBX"))
        assert "RAX" in access.writes
        assert "RBX" in access.reads

    def test_memory_load_reads_address_registers_and_memory(self):
        access = instruction_accesses(parse_instruction("MOV RAX, QWORD PTR [RBX + RCX*4]"))
        assert {"RBX", "RCX", MEMORY_LOCATION} <= access.reads
        assert "RAX" in access.writes

    def test_memory_store_writes_memory(self):
        access = instruction_accesses(parse_instruction("MOV QWORD PTR [RDI], RSI"))
        assert MEMORY_LOCATION in access.writes
        assert {"RDI", "RSI"} <= access.reads

    def test_cmov_reads_flags(self):
        access = instruction_accesses(parse_instruction("CMOVG EAX, ECX"))
        assert FLAGS_FAMILY in access.reads

    def test_div_implicit_registers(self):
        access = instruction_accesses(parse_instruction("IDIV RCX"))
        assert {"RAX", "RDX", "RCX"} <= access.reads
        assert {"RAX", "RDX"} <= access.writes


class TestBasicBlock:
    def test_from_text_and_len(self, paper_example_block):
        assert len(paper_example_block) == 8
        assert paper_example_block.identifier == "table1"

    def test_iteration_and_indexing(self, paper_example_block):
        assert paper_example_block[0].mnemonic == "CMP"
        assert [i.mnemonic for i in paper_example_block][-1] == "CMP"

    def test_render_round_trip(self, paper_example_block):
        rendered = paper_example_block.render()
        reparsed = BasicBlock.from_text(rendered)
        assert len(reparsed) == len(paper_example_block)

    def test_mnemonic_histogram(self, paper_example_block):
        histogram = paper_example_block.mnemonic_histogram()
        assert histogram["CMP"] == 2
        assert histogram["MOV"] == 2
        assert histogram["CMOVG"] == 1

    def test_empty_block(self):
        block = BasicBlock([])
        assert len(block) == 0
        assert block.data_dependencies() == []
        assert block.critical_path_length() == 0.0


class TestDataDependencies:
    def test_simple_raw_dependency(self):
        block = BasicBlock.from_text("MOV RAX, 1\nADD RBX, RAX")
        dependencies = block.data_dependencies()
        assert any(d.producer == 0 and d.consumer == 1 and d.resource == "RAX" for d in dependencies)

    def test_dependency_through_aliased_registers(self):
        block = BasicBlock.from_text("MOV EAX, 1\nADD RBX, RAX")
        assert any(d.resource == "RAX" for d in block.data_dependencies())

    def test_most_recent_writer_wins(self):
        block = BasicBlock.from_text("MOV RAX, 1\nMOV RAX, 2\nADD RBX, RAX")
        raw = [d for d in block.data_dependencies() if d.resource == "RAX" and d.consumer == 2]
        assert len(raw) == 1
        assert raw[0].producer == 1

    def test_flags_dependency(self):
        block = BasicBlock.from_text("CMP RAX, RBX\nCMOVG RCX, RDX")
        assert any(d.resource == FLAGS_FAMILY for d in block.data_dependencies())

    def test_memory_dependency_store_then_load(self):
        block = BasicBlock.from_text("MOV QWORD PTR [RSP], RAX\nMOV RBX, QWORD PTR [RSP + 8]")
        assert any(d.resource == MEMORY_LOCATION for d in block.data_dependencies())

    def test_independent_instructions_have_no_dependencies(self):
        block = BasicBlock.from_text("MOV RAX, 1\nMOV RBX, 2")
        assert block.data_dependencies() == []

    def test_figure1_dependencies(self, figure1_block):
        """MOV writes RAX which the ADD address computation reads."""
        dependencies = figure1_block.data_dependencies()
        assert any(d.producer == 0 and d.consumer == 1 and d.resource == "RAX" for d in dependencies)


class TestCriticalPath:
    def test_independent_block_has_unit_critical_path(self):
        block = BasicBlock.from_text("MOV RAX, 1\nMOV RBX, 2\nMOV RCX, 3")
        assert block.critical_path_length() == pytest.approx(1.0)

    def test_chain_has_length_equal_to_depth(self):
        block = BasicBlock.from_text("ADD RAX, 1\nADD RAX, 2\nADD RAX, 3")
        assert block.critical_path_length() == pytest.approx(3.0)

    def test_custom_latency_function(self):
        block = BasicBlock.from_text("IMUL RAX, RBX\nADD RAX, 1")
        latency = lambda instruction: 3.0 if instruction.mnemonic == "IMUL" else 1.0
        assert block.critical_path_length(latency) == pytest.approx(4.0)

    def test_accesses_are_cached(self, paper_example_block):
        first = paper_example_block.accesses
        second = paper_example_block.accesses
        assert first is second
