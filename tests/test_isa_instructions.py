"""Tests for the Instruction data model (repro.isa.instructions)."""

import pytest

from repro.isa.instructions import Instruction, render_instructions
from repro.isa.operands import MemoryReference, Operand


class TestInstruction:
    def test_mnemonic_upper_cased(self):
        instruction = Instruction.create("add", [Operand.from_register("rax")])
        assert instruction.mnemonic == "ADD"

    def test_operands_are_tuple(self):
        instruction = Instruction.create("ADD", [Operand.from_register("RAX")])
        assert isinstance(instruction.operands, tuple)
        assert instruction.num_operands == 1

    def test_prefix_normalisation(self):
        instruction = Instruction.create("add", [Operand.from_register("RAX")], ["lock"])
        assert instruction.prefixes == ("LOCK",)

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ValueError):
            Instruction.create("ADD", [], ["BOGUS"])

    def test_memory_operand_helpers(self):
        memory = Operand.from_memory(MemoryReference(base="RAX"))
        register = Operand.from_register("RBX")
        instruction = Instruction.create("ADD", [memory, register])
        assert instruction.has_memory_operand
        assert instruction.memory_operands == [memory]
        assert instruction.register_operands == [register]

    def test_render_with_prefix_and_operands(self):
        instruction = Instruction.create(
            "ADD",
            [Operand.from_memory(MemoryReference(base="RAX", width_bits=64)),
             Operand.from_register("RBX")],
            ["LOCK"],
        )
        text = instruction.render()
        assert text.startswith("LOCK ADD ")
        assert "QWORD PTR [RAX]" in text
        assert text.endswith("RBX")

    def test_render_no_operands(self):
        assert Instruction.create("CDQ").render() == "CDQ"

    def test_render_instructions_joins_lines(self):
        instructions = [Instruction.create("CDQ"), Instruction.create("CQO")]
        assert render_instructions(instructions) == "CDQ\nCQO"

    def test_instructions_are_hashable_and_equal(self):
        first = Instruction.create("ADD", [Operand.from_register("RAX")])
        second = Instruction.create("add", [Operand.from_register("RAX")])
        assert first == second
        assert hash(first) == hash(second)
