"""Tests for operands and memory references (repro.isa.operands)."""

import pytest

from repro.isa.operands import MemoryReference, Operand, OperandKind


class TestMemoryReference:
    def test_simple_base_reference(self):
        memory = MemoryReference(base="RAX", width_bits=32)
        assert memory.base == "RAX"
        assert memory.scale == 1
        assert memory.address_registers == ("RAX",)

    def test_full_addressing_expression(self):
        memory = MemoryReference(
            base="RBP", index="RCX", scale=4, displacement=-16, segment="FS", width_bits=64
        )
        assert set(memory.address_registers) == {"RBP", "RCX", "FS"}

    def test_address_registers_are_canonical(self):
        memory = MemoryReference(base="EAX", index="R10D")
        assert set(memory.address_registers) == {"RAX", "R10"}

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            MemoryReference(base="RAX", index="RBX", scale=3)

    def test_unknown_register_rejected(self):
        with pytest.raises(ValueError):
            MemoryReference(base="NOTREG")

    def test_render_simple(self):
        assert MemoryReference(base="RAX", width_bits=32).render() == "DWORD PTR [RAX]"

    def test_render_with_displacement_and_index(self):
        text = MemoryReference(base="RAX", index="RBX", scale=4, displacement=16).render()
        assert "RAX" in text and "RBX*4" in text and "[" in text

    def test_render_negative_displacement(self):
        text = MemoryReference(base="RBP", displacement=-8).render()
        assert "- 8" in text


class TestOperand:
    def test_register_operand(self):
        operand = Operand.from_register("eax")
        assert operand.kind is OperandKind.REGISTER
        assert operand.register == "EAX"
        assert operand.register_family == "RAX"
        assert operand.is_register and not operand.is_memory

    def test_immediate_operand(self):
        operand = Operand.from_immediate(42)
        assert operand.kind is OperandKind.IMMEDIATE
        assert operand.immediate == 42
        assert operand.is_immediate

    def test_fp_immediate_operand(self):
        operand = Operand.from_fp_immediate(1.5)
        assert operand.kind is OperandKind.FP_IMMEDIATE
        assert operand.fp_immediate == pytest.approx(1.5)
        assert operand.is_immediate

    def test_memory_operand(self):
        operand = Operand.from_memory(MemoryReference(base="RSP", displacement=8))
        assert operand.kind is OperandKind.MEMORY
        assert operand.is_memory
        assert operand.register_family is None

    def test_unknown_register_operand_rejected(self):
        with pytest.raises(ValueError):
            Operand.from_register("BOGUS")

    def test_missing_payload_rejected(self):
        with pytest.raises(ValueError):
            Operand(kind=OperandKind.REGISTER)

    def test_render_register_and_immediates(self):
        assert Operand.from_register("rbx").render() == "RBX"
        assert Operand.from_immediate(5).render() == "5"
        assert Operand.from_immediate(255).render() == "0xff"
        assert "1.5" in Operand.from_fp_immediate(1.5).render()
