"""Tests for the Intel-syntax assembly parser (repro.isa.parser)."""

import pytest

from repro.isa.operands import OperandKind
from repro.isa.parser import AssemblyParseError, parse_block_text, parse_instruction


class TestParseInstruction:
    def test_simple_register_register(self):
        instruction = parse_instruction("ADD RAX, RBX")
        assert instruction.mnemonic == "ADD"
        assert [op.register for op in instruction.operands] == ["RAX", "RBX"]

    def test_mnemonic_is_upper_cased(self):
        assert parse_instruction("add eax, ebx").mnemonic == "ADD"

    def test_immediate_operands(self):
        instruction = parse_instruction("CMP R15D, 1")
        assert instruction.operands[1].kind is OperandKind.IMMEDIATE
        assert instruction.operands[1].immediate == 1

    def test_hex_immediate(self):
        instruction = parse_instruction("AND EAX, 0x8")
        assert instruction.operands[1].immediate == 8

    def test_negative_immediate(self):
        instruction = parse_instruction("ADD RAX, -16")
        assert instruction.operands[1].immediate == -16

    def test_no_operand_instruction(self):
        instruction = parse_instruction("CDQ")
        assert instruction.mnemonic == "CDQ"
        assert instruction.num_operands == 0

    def test_memory_operand_with_size(self):
        instruction = parse_instruction("MOV DWORD PTR [RBP - 3], EAX")
        memory = instruction.operands[0].memory
        assert memory.base == "RBP"
        assert memory.displacement == -3
        assert memory.width_bits == 32

    def test_memory_operand_with_index_and_scale(self):
        instruction = parse_instruction("MOV RAX, QWORD PTR [RBX + RCX*8 + 0x10]")
        memory = instruction.operands[1].memory
        assert memory.base == "RBX"
        assert memory.index == "RCX"
        assert memory.scale == 8
        assert memory.displacement == 16
        assert memory.width_bits == 64

    def test_scale_before_register(self):
        memory = parse_instruction("LEA RAX, [4*RCX + 8]").operands[1].memory
        assert memory.index == "RCX"
        assert memory.scale == 4

    def test_segment_override(self):
        instruction = parse_instruction("MOV RAX, QWORD PTR FS:[0x28]")
        memory = instruction.operands[1].memory
        assert memory.segment == "FS"
        assert memory.displacement == 0x28

    def test_memory_without_size_annotation(self):
        instruction = parse_instruction("MOV RAX, [RSP]")
        assert instruction.operands[1].is_memory
        assert instruction.operands[1].memory.width_bits == 0

    def test_lock_prefix(self):
        instruction = parse_instruction("LOCK ADD QWORD PTR [RAX], RBX")
        assert instruction.prefixes == ("LOCK",)
        assert instruction.mnemonic == "ADD"

    def test_rep_prefix(self):
        instruction = parse_instruction("REP STOSQ")
        assert instruction.prefixes == ("REP",)
        assert instruction.mnemonic == "STOSQ"

    def test_blank_and_comment_lines_return_none(self):
        assert parse_instruction("") is None
        assert parse_instruction("   ") is None
        assert parse_instruction("; just a comment") is None
        assert parse_instruction("# hash comment") is None

    def test_trailing_comment_is_stripped(self):
        instruction = parse_instruction("ADD RAX, RBX ; accumulate")
        assert instruction.mnemonic == "ADD"
        assert instruction.num_operands == 2

    def test_label_only_line_returns_none(self):
        assert parse_instruction(".L123:") is None

    def test_numbered_line_prefix(self):
        instruction = parse_instruction("3: TEST ECX, ECX")
        assert instruction.mnemonic == "TEST"

    def test_symbolic_branch_target(self):
        instruction = parse_instruction("JNE .L42")
        assert instruction.mnemonic == "JNE"
        assert instruction.operands[0].kind is OperandKind.IMMEDIATE

    def test_floating_point_immediate(self):
        instruction = parse_instruction("FOO XMM0, 1.25")
        assert instruction.operands[1].kind is OperandKind.FP_IMMEDIATE

    def test_malformed_memory_raises(self):
        with pytest.raises(AssemblyParseError):
            parse_instruction("MOV RAX, DWORD PTR [RBX")

    def test_garbage_operand_raises(self):
        with pytest.raises(AssemblyParseError):
            parse_instruction("MOV RAX, ???")

    def test_prefix_without_instruction_raises(self):
        with pytest.raises(AssemblyParseError):
            parse_instruction("LOCK")


class TestParseBlockText:
    def test_paper_table1_block(self, paper_example_block):
        assert len(paper_example_block) == 8
        mnemonics = [instruction.mnemonic for instruction in paper_example_block]
        assert mnemonics == ["CMP", "SBB", "AND", "TEST", "MOV", "MOV", "CMOVG", "CMP"]

    def test_blank_lines_are_skipped(self):
        instructions = parse_block_text("\nADD RAX, 1\n\nSUB RBX, 2\n")
        assert len(instructions) == 2

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyParseError, match="line 2"):
            parse_block_text("ADD RAX, 1\nMOV RAX, ???")

    def test_round_trip_through_render(self, sample_blocks):
        """Rendering then re-parsing preserves mnemonics and operand kinds."""
        for block in sample_blocks[:20]:
            reparsed = parse_block_text(block.render())
            assert len(reparsed) == len(block)
            for original, parsed in zip(block.instructions, reparsed):
                assert original.mnemonic == parsed.mnemonic
                assert original.prefixes == parsed.prefixes
                assert len(original.operands) == len(parsed.operands)
                for left, right in zip(original.operands, parsed.operands):
                    assert left.kind == right.kind
