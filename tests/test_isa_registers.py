"""Tests for the register model (repro.isa.registers)."""

import pytest

from repro.isa.registers import (
    REGISTER_FILE,
    RegisterClass,
    RegisterFile,
    canonical_register,
    is_register_name,
    registers_alias,
)


class TestRegisterLookup:
    def test_known_general_purpose_registers(self):
        for name in ("RAX", "EAX", "AX", "AL", "AH", "R8", "R8D", "R8W", "R8B"):
            assert is_register_name(name)

    def test_lookup_is_case_insensitive(self):
        assert REGISTER_FILE.get("rax").name == "RAX"
        assert REGISTER_FILE.get("Eax").name == "EAX"

    def test_unknown_register_raises(self):
        with pytest.raises(KeyError):
            REGISTER_FILE.get("RXYZ")

    def test_unknown_name_is_not_register(self):
        assert not is_register_name("FOO")
        assert not is_register_name("123")

    def test_vector_registers_exist(self):
        for name in ("XMM0", "YMM5", "ZMM15", "XMM15"):
            assert is_register_name(name)

    def test_flags_and_rip(self):
        assert REGISTER_FILE.get("EFLAGS").reg_class is RegisterClass.FLAGS
        assert REGISTER_FILE.get("RIP").reg_class is RegisterClass.INSTRUCTION_POINTER


class TestAliasing:
    def test_gpr_family_aliases(self):
        assert canonical_register("EAX") == "RAX"
        assert canonical_register("AX") == "RAX"
        assert canonical_register("AL") == "RAX"
        assert canonical_register("AH") == "RAX"
        assert canonical_register("RAX") == "RAX"

    def test_extended_register_aliases(self):
        assert canonical_register("R10D") == "R10"
        assert canonical_register("R10W") == "R10"
        assert canonical_register("R10B") == "R10"

    def test_vector_register_aliases(self):
        assert canonical_register("XMM3") == "ZMM3"
        assert canonical_register("YMM3") == "ZMM3"

    def test_registers_alias_predicate(self):
        assert registers_alias("EAX", "AL")
        assert registers_alias("XMM1", "YMM1")
        assert not registers_alias("EAX", "EBX")
        assert not registers_alias("XMM1", "XMM2")

    def test_flags_alias(self):
        assert registers_alias("EFLAGS", "RFLAGS")

    def test_family_members_cover_all_aliases(self):
        members = REGISTER_FILE.family_members("RAX")
        assert {"RAX", "EAX", "AX", "AL", "AH"} <= members


class TestRegisterFile:
    def test_sixteen_general_purpose_families(self):
        assert len(REGISTER_FILE.general_purpose_families()) == 16

    def test_vector_families_count(self):
        assert len(REGISTER_FILE.vector_families()) == 32

    def test_register_widths(self):
        assert REGISTER_FILE.get("RAX").width_bits == 64
        assert REGISTER_FILE.get("EAX").width_bits == 32
        assert REGISTER_FILE.get("AX").width_bits == 16
        assert REGISTER_FILE.get("AL").width_bits == 8
        assert REGISTER_FILE.get("XMM0").width_bits == 128
        assert REGISTER_FILE.get("YMM0").width_bits == 256

    def test_contains_and_len(self):
        assert "RAX" in REGISTER_FILE
        assert "rax" in REGISTER_FILE
        assert "NOTAREG" not in REGISTER_FILE
        assert len(REGISTER_FILE) > 100

    def test_custom_register_file_is_independent(self):
        custom = RegisterFile()
        assert custom.family_of("EBX") == "RBX"

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            REGISTER_FILE.family_members("NOPE")
