"""Tests for instruction semantics (repro.isa.semantics)."""


from repro.isa.instructions import Instruction
from repro.isa.operands import Operand
from repro.isa.parser import parse_instruction
from repro.isa.semantics import (
    CONDITION_CODES,
    InstructionCategory,
    OperandAction,
    known_mnemonics,
    operand_reads_and_writes,
    semantics_for,
)


class TestSemanticsTable:
    def test_mov_writes_first_reads_second(self):
        semantics = semantics_for("MOV")
        assert semantics.action_for_operand(0) is OperandAction.WRITE
        assert semantics.action_for_operand(1) is OperandAction.READ
        assert not semantics.writes_flags

    def test_add_is_read_modify_write_and_writes_flags(self):
        semantics = semantics_for("ADD")
        assert semantics.action_for_operand(0) is OperandAction.READ_WRITE
        assert semantics.writes_flags
        assert not semantics.reads_flags

    def test_cmp_reads_both_operands(self):
        semantics = semantics_for("CMP")
        assert semantics.action_for_operand(0) is OperandAction.READ
        assert semantics.action_for_operand(1) is OperandAction.READ
        assert semantics.writes_flags

    def test_adc_reads_and_writes_flags(self):
        semantics = semantics_for("ADC")
        assert semantics.reads_flags and semantics.writes_flags

    def test_cmov_reads_flags_only(self):
        semantics = semantics_for("CMOVG")
        assert semantics.reads_flags and not semantics.writes_flags
        assert semantics.category is InstructionCategory.CONDITIONAL_MOVE

    def test_all_condition_codes_expanded(self):
        for code in CONDITION_CODES:
            assert semantics_for(f"CMOV{code}").reads_flags
            assert semantics_for(f"SET{code}").reads_flags
            assert semantics_for(f"J{code}").category is InstructionCategory.BRANCH

    def test_mul_div_implicit_operands(self):
        mul = semantics_for("MUL")
        assert "RAX" in mul.implicit_reads
        assert {"RAX", "RDX"} <= mul.implicit_writes
        div = semantics_for("IDIV")
        assert {"RAX", "RDX"} <= div.implicit_reads
        assert div.category is InstructionCategory.DIVIDE

    def test_push_pop_touch_stack_pointer(self):
        assert "RSP" in semantics_for("PUSH").implicit_reads
        assert "RSP" in semantics_for("POP").implicit_writes

    def test_unknown_mnemonic_gets_generic_semantics(self):
        semantics = semantics_for("FROBNICATE")
        assert semantics.category is InstructionCategory.OTHER
        assert semantics.action_for_operand(0) is OperandAction.READ_WRITE
        assert semantics.action_for_operand(1) is OperandAction.READ

    def test_known_mnemonics_is_sorted_and_nonempty(self):
        mnemonics = known_mnemonics()
        assert len(mnemonics) > 150
        assert list(mnemonics) == sorted(mnemonics)
        assert "ADD" in mnemonics and "MOVSD" in mnemonics

    def test_semantics_accepts_instruction_objects(self):
        instruction = parse_instruction("XOR EAX, EAX")
        assert semantics_for(instruction).writes_flags

    def test_vector_categories(self):
        assert semantics_for("MULSD").category is InstructionCategory.VECTOR_MULTIPLY
        assert semantics_for("DIVSD").category is InstructionCategory.VECTOR_DIVIDE
        assert semantics_for("PXOR").category is InstructionCategory.VECTOR_LOGIC
        assert semantics_for("UCOMISD").writes_flags

    def test_action_for_operand_beyond_declared_repeats_last(self):
        semantics = semantics_for("IMUL")
        assert semantics.action_for_operand(5) is OperandAction.READ


class TestOperandReadsAndWrites:
    def test_add_register_register(self):
        instruction = parse_instruction("ADD RAX, RBX")
        reads, writes = operand_reads_and_writes(instruction)
        assert reads == (0, 1)
        assert writes == (0,)

    def test_mov_register_immediate(self):
        instruction = parse_instruction("MOV RAX, 5")
        reads, writes = operand_reads_and_writes(instruction)
        assert reads == (1,)
        assert writes == (0,)

    def test_store_to_memory(self):
        instruction = parse_instruction("MOV QWORD PTR [RSP + 8], RAX")
        reads, writes = operand_reads_and_writes(instruction)
        assert 1 in reads
        assert writes == (0,)

    def test_immediate_never_written(self):
        instruction = parse_instruction("CMP RAX, 7")
        _, writes = operand_reads_and_writes(instruction)
        assert writes == ()
