"""Per-module prediction-cache generations (repro.models.base).

The prediction cache used to be keyed to a single *global* parameter
generation, so training any model in the process invalidated every other
model's cache.  These tests pin the per-module behaviour: a model's cache
survives unrelated training and still invalidates on its own updates.
"""

import numpy as np
import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.models import create_model
from repro.nn.module import bump_parameter_version
from repro.nn.optim import SGD


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(GeneratorConfig(seed=11)).generate_blocks(8)


def _train_one_step(model, blocks):
    """One tracked weight update: backprop-free, via the optimizer."""
    optimizer = SGD(model.parameters(), learning_rate=1e-3)
    for parameter in model.parameters():
        parameter.grad = np.ones_like(parameter.data)
    optimizer.step()


class TestPerModuleGeneration:
    def test_training_one_model_keeps_the_others_cache(self, blocks):
        served = create_model("granite", small=True, seed=0)
        trained = create_model("ithemal+", small=True, seed=1)
        before = served.predict(blocks)
        assert served.prediction_cache_stats["entries"] == len(blocks)

        _train_one_step(trained, blocks)

        # The served model's cache must survive the other model's training:
        # every block is a hit and the values are identical.
        hits_before = served.prediction_cache_stats["hits"]
        after = served.predict(blocks)
        assert served.prediction_cache_stats["entries"] == len(blocks)
        assert served.prediction_cache_stats["hits"] == hits_before + len(blocks)
        for task in served.tasks:
            np.testing.assert_array_equal(after[task], before[task])

    def test_own_training_still_invalidates(self, blocks):
        model = create_model("granite", small=True, seed=3)
        stale = model.predict(blocks)
        assert model.prediction_cache_stats["entries"] == len(blocks)

        _train_one_step(model, blocks)

        fresh = model.predict(blocks)
        assert model.prediction_cache_stats["entries"] == len(blocks)
        # The update moved the weights, so cached values must not be served.
        changed = any(
            not np.allclose(fresh[task], stale[task]) for task in model.tasks
        )
        assert changed

    def test_load_state_dict_invalidates_own_cache_only(self, blocks):
        served = create_model("granite", small=True, seed=0)
        reloaded = create_model("granite", small=True, seed=4)
        donor = create_model("granite", small=True, seed=5)
        served.predict(blocks)
        stale = reloaded.predict(blocks)

        reloaded.load_state_dict(donor.state_dict())

        fresh = reloaded.predict(blocks)
        changed = any(
            not np.allclose(fresh[task], stale[task]) for task in reloaded.tasks
        )
        assert changed
        # The bystander's cache is untouched: all hits.
        hits_before = served.prediction_cache_stats["hits"]
        served.predict(blocks)
        assert served.prediction_cache_stats["hits"] == hits_before + len(blocks)

    def test_global_bump_alone_does_not_drop_caches(self, blocks):
        """A bare global version bump (no weights moved) keeps every cache."""
        model = create_model("granite", small=True, seed=6)
        model.predict(blocks)
        bump_parameter_version()
        hits_before = model.prediction_cache_stats["hits"]
        model.predict(blocks)
        assert model.prediction_cache_stats["hits"] == hits_before + len(blocks)

    def test_parameter_generation_is_strictly_monotonic(self, blocks):
        model = create_model("ithemal+", small=True, seed=7)
        generation = model.parameter_generation()
        _train_one_step(model, blocks)
        stepped = model.parameter_generation()
        assert stepped > generation
        model.load_state_dict(model.state_dict())
        assert model.parameter_generation() > stepped


class TestDtypeCacheIsolation:
    """The prediction cache key includes the inference dtype.

    A float64 training model and a float32 serving clone must neither
    cross-hit (serving reduced-precision values as full-precision ones or
    vice versa) nor cross-invalidate each other's prediction caches.
    """

    def test_float32_clone_never_hits_float64_entries(self, blocks):
        model = create_model("granite", small=True, seed=8, inference_dtype="float64")
        first = model.predict(blocks)
        assert model.prediction_cache_stats["entries"] == len(blocks)

        # Same model object flipped to float32: the same block texts must
        # miss (different key), recompute, and coexist with the float64
        # entries rather than evict them.
        model.inference_dtype = "float32"
        flipped = model.predict(blocks)
        stats = model.prediction_cache_stats
        assert stats["entries"] == 2 * len(blocks)
        changed = any(
            not np.array_equal(flipped[task], first[task]) for task in model.tasks
        )
        assert changed, "float32 predictions served bit-identical float64 values"

        # Flipping back serves the original float64 entries from cache.
        model.inference_dtype = "float64"
        hits_before = model.prediction_cache_stats["hits"]
        again = model.predict(blocks)
        assert model.prediction_cache_stats["hits"] == hits_before + len(blocks)
        for task in model.tasks:
            np.testing.assert_array_equal(again[task], first[task])

    def test_training_float64_model_keeps_float32_clones_cache(self, blocks):
        trained = create_model("granite", small=True, seed=8, inference_dtype="float64")
        served = create_model("granite", small=True, seed=8, inference_dtype="float32")
        served.load_state_dict(trained.state_dict())
        before = served.predict(blocks)
        assert served.prediction_cache_stats["entries"] == len(blocks)

        _train_one_step(trained, blocks)

        # The float32 clone's cache survives the float64 model's training
        # (separate modules, separate generations) and serves identical
        # values from cache.
        hits_before = served.prediction_cache_stats["hits"]
        after = served.predict(blocks)
        assert served.prediction_cache_stats["hits"] == hits_before + len(blocks)
        for task in served.tasks:
            np.testing.assert_array_equal(after[task], before[task])

        # And the trained model's own (float64) cache was invalidated: its
        # next predictions are fresh, not the clone's float32 values.
        fresh = trained.predict(blocks)
        changed = any(
            not np.allclose(fresh[task], before[task]) for task in trained.tasks
        )
        assert changed


class TestCacheStatsHook:
    def test_uniform_summary_across_model_families(self, blocks):
        for name in ("granite", "ithemal+"):
            model = create_model(name, small=True, seed=0)
            for _ in range(2):
                model.predict(blocks)
            stats = model.cache_stats()
            assert stats["encode_misses"] > 0
            assert stats["prediction_hits"] == len(blocks)
            assert stats["prediction_misses"] == len(blocks)
            assert stats["prediction_hit_rate"] == pytest.approx(0.5)
            assert stats["prediction_entries"] == len(blocks)
            assert 0.0 <= stats["encode_hit_rate"] <= 1.0
