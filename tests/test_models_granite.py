"""Tests for the GRANITE model (repro.models.granite)."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilderConfig
from repro.models.config import GraniteConfig
from repro.models.granite import GraniteModel
from repro.nn.losses import mean_absolute_percentage_error
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def small_config():
    return GraniteConfig.small(num_message_passing_iterations=2, seed=0)


@pytest.fixture(scope="module")
def model(small_config):
    return GraniteModel(small_config)


class TestConstruction:
    def test_one_decoder_per_task(self, model):
        assert set(model.decoders) == set(model.tasks)
        assert len(model.tasks) == 3

    def test_single_task_model(self):
        model = GraniteModel(GraniteConfig.small(tasks=("haswell",)))
        assert model.tasks == ("haswell",)
        assert set(model.decoders) == {"haswell"}

    def test_no_tasks_rejected(self):
        with pytest.raises(ValueError):
            GraniteModel(GraniteConfig.small(tasks=()))

    def test_paper_defaults_match_table4(self):
        config = GraniteConfig.paper_defaults()
        assert config.node_embedding_size == 256
        assert config.edge_embedding_size == 256
        assert config.global_embedding_size == 256
        assert config.update_hidden_sizes == (256, 256)
        assert config.decoder_hidden_sizes == (256, 256)
        assert config.num_message_passing_iterations == 8
        assert config.use_layer_norm and config.use_residual

    def test_parameter_count_scales_with_embedding_size(self):
        small = GraniteModel(GraniteConfig.small())
        smaller = GraniteModel(
            GraniteConfig.small()
        )
        assert small.num_parameters() == smaller.num_parameters()
        assert small.num_parameters() > 10_000


class TestEncoding:
    def test_encode_blocks_produces_packed_batch(self, model, sample_blocks):
        batch = model.encode_blocks(sample_blocks[:4])
        assert batch.graphs.num_graphs == 4
        assert batch.topology.num_graphs == 4
        batch.graphs.validate()

    def test_encode_empty_list_rejected(self, model):
        with pytest.raises(ValueError):
            model.encode_blocks([])


class TestForward:
    def test_prediction_shapes(self, model, sample_blocks):
        predictions = model.predict(sample_blocks[:6])
        assert set(predictions) == set(model.tasks)
        for values in predictions.values():
            assert values.shape == (6,)
            assert np.all(np.isfinite(values))

    def test_predict_single(self, model, paper_example_block):
        prediction = model.predict_single(paper_example_block)
        assert set(prediction) == set(model.tasks)

    def test_deterministic_inference(self, model, sample_blocks):
        first = model.predict(sample_blocks[:4])
        second = model.predict(sample_blocks[:4])
        for task in model.tasks:
            np.testing.assert_allclose(first[task], second[task])

    def test_batch_independence(self, model, sample_blocks):
        """A block's prediction must not depend on what else is in the batch."""
        alone = model.predict([sample_blocks[0]])
        batched = model.predict(sample_blocks[:5])
        for task in model.tasks:
            np.testing.assert_allclose(alone[task][0], batched[task][0], rtol=1e-8)

    def test_per_instruction_decomposition(self, model, sample_blocks):
        """Predictions are sums of per-instruction contributions, so a block
        concatenated with itself roughly doubles (up to graph differences)."""
        block = sample_blocks[0]
        from repro.isa.basic_block import BasicBlock

        doubled = BasicBlock(tuple(block.instructions) + tuple(block.instructions))
        single = model.predict([block])
        double = model.predict([doubled])
        for task in model.tasks:
            assert abs(double[task][0]) > abs(single[task][0]) * 1.2

    def test_embed_batch_shape(self, model, sample_blocks):
        batch = model.encode_blocks(sample_blocks[:3])
        embeddings = model.embed_batch(batch)
        total_instructions = sum(len(block) for block in sample_blocks[:3])
        assert embeddings.shape == (total_instructions, model.config.node_embedding_size)

    def test_different_blocks_get_different_predictions(self, model, sample_blocks):
        predictions = model.predict(sample_blocks[:10])
        for task in model.tasks:
            assert np.std(predictions[task]) > 0.0

    def test_message_passing_iterations_change_predictions(self, sample_blocks):
        one = GraniteModel(GraniteConfig.small(num_message_passing_iterations=1, seed=3))
        four = GraniteModel(GraniteConfig.small(num_message_passing_iterations=4, seed=3))
        first = one.predict(sample_blocks[:4])
        second = four.predict(sample_blocks[:4])
        assert not np.allclose(first["haswell"], second["haswell"])


class TestTrainingBehaviour:
    def test_gradients_reach_all_parameter_groups(self, sample_blocks):
        model = GraniteModel(GraniteConfig.small(num_message_passing_iterations=2, seed=1))
        batch = model.encode_blocks(sample_blocks[:8])
        predictions = model.forward(batch)
        target = Tensor(np.full(8, 300.0))
        loss = mean_absolute_percentage_error(predictions["haswell"], target)
        loss.backward()
        named = dict(model.named_parameters())
        groups_with_gradient = {
            "node_embedding": False, "edge_embedding": False,
            "global_encoder": False, "graph_network": False, "decoders": False,
        }
        for name, parameter in named.items():
            if parameter.grad is not None and np.abs(parameter.grad).sum() > 0:
                for group in groups_with_gradient:
                    if name.startswith(group):
                        groups_with_gradient[group] = True
        assert all(groups_with_gradient.values()), groups_with_gradient

    def test_few_steps_of_training_reduce_loss(self, sample_blocks):
        model = GraniteModel(GraniteConfig.small(num_message_passing_iterations=2, seed=2))
        optimizer = Adam(model.parameters(), learning_rate=1e-3)
        blocks = sample_blocks[:16]
        targets = Tensor(np.linspace(200.0, 800.0, len(blocks)))
        batch = model.encode_blocks(blocks)

        losses = []
        for _ in range(25):
            model.zero_grad()
            predictions = model.forward(batch)
            loss = mean_absolute_percentage_error(predictions["skylake"], targets)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_graph_ablation_config_changes_predictions(self, sample_blocks):
        config = GraniteConfig.small(seed=4)
        full = GraniteModel(config)
        structural_only = GraniteModel(
            config,
            graph_config=GraphBuilderConfig(
                include_data_edges=False,
                include_address_edges=False,
                include_implicit_operands=False,
            ),
        )
        full_predictions = full.predict(sample_blocks[:4])
        ablated_predictions = structural_only.predict(sample_blocks[:4])
        assert not np.allclose(
            full_predictions["haswell"], ablated_predictions["haswell"]
        )


class TestGlobalReadout:
    def test_global_readout_predictions_have_correct_shape(self, sample_blocks):
        config = GraniteConfig.small(seed=7)
        from dataclasses import replace

        model = GraniteModel(replace(config, readout="global"))
        predictions = model.predict(sample_blocks[:5])
        for task in model.tasks:
            assert predictions[task].shape == (5,)
            assert np.all(np.isfinite(predictions[task]))

    def test_invalid_readout_rejected(self):
        with pytest.raises(ValueError):
            GraniteConfig.small().__class__(
                **{**GraniteConfig.small().__dict__, "readout": "attention"}
            )

    def test_invalid_aggregation_rejected(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(GraniteConfig.small(), aggregation="median")

    def test_global_readout_differs_from_per_instruction(self, sample_blocks):
        from dataclasses import replace

        config = GraniteConfig.small(seed=8)
        per_instruction = GraniteModel(config)
        global_readout = GraniteModel(replace(config, readout="global"))
        first = per_instruction.predict(sample_blocks[:4])
        second = global_readout.predict(sample_blocks[:4])
        assert not np.allclose(first["haswell"], second["haswell"])

    def test_global_readout_is_trainable(self, sample_blocks):
        from dataclasses import replace

        model = GraniteModel(replace(GraniteConfig.small(seed=9), readout="global"))
        optimizer = Adam(model.parameters(), learning_rate=1e-3)
        targets = Tensor(np.linspace(200.0, 600.0, 12))
        batch = model.encode_blocks(sample_blocks[:12])
        losses = []
        for _ in range(20):
            model.zero_grad()
            loss = mean_absolute_percentage_error(model.forward(batch)["haswell"], targets)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
