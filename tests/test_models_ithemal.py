"""Tests for the Ithemal / Ithemal+ baselines (repro.models.ithemal)."""

import numpy as np
import pytest

from repro.models.config import IthemalConfig
from repro.models.ithemal import IthemalModel
from repro.nn.losses import mean_absolute_percentage_error
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def vanilla_model():
    return IthemalModel(IthemalConfig.small(plus=False, seed=0))


@pytest.fixture(scope="module")
def plus_model():
    return IthemalModel(IthemalConfig.small(plus=True, seed=0))


class TestConstruction:
    def test_vanilla_uses_dot_product_decoder(self, vanilla_model):
        assert vanilla_model.config.decoder == "dot_product"
        assert set(vanilla_model.decoder_weights) == set(vanilla_model.tasks)
        assert vanilla_model.decoders == {}

    def test_plus_uses_mlp_decoder(self, plus_model):
        assert plus_model.config.decoder == "mlp"
        assert set(plus_model.decoders) == set(plus_model.tasks)
        assert plus_model.decoder_weights == {}

    def test_plus_has_more_parameters_than_vanilla(self, vanilla_model, plus_model):
        assert plus_model.num_parameters() > vanilla_model.num_parameters()

    def test_invalid_decoder_rejected(self):
        with pytest.raises(ValueError):
            IthemalConfig(decoder="transformer")

    def test_no_tasks_rejected(self):
        with pytest.raises(ValueError):
            IthemalModel(IthemalConfig.small(tasks=()))

    def test_paper_defaults(self):
        config = IthemalConfig.paper_defaults(plus=True)
        assert config.hidden_size == 256
        assert config.token_embedding_size == 256
        assert config.decoder == "mlp"


class TestEncoding:
    def test_batch_shapes(self, plus_model, sample_blocks):
        batch = plus_model.encode_blocks(sample_blocks[:5])
        assert batch.num_blocks == 5
        assert batch.token_ids.shape[0] == sum(len(block) for block in sample_blocks[:5])
        assert batch.token_lengths.max() <= batch.token_ids.shape[1]
        assert batch.block_lengths.sum() == batch.token_ids.shape[0]

    def test_instruction_block_assignment(self, plus_model, sample_blocks):
        blocks = sample_blocks[:4]
        batch = plus_model.encode_blocks(blocks)
        counts = np.bincount(batch.instruction_block_ids, minlength=len(blocks))
        assert list(counts) == [len(block) for block in blocks]

    def test_encode_empty_list_rejected(self, plus_model):
        with pytest.raises(ValueError):
            plus_model.encode_blocks([])


class TestForward:
    def test_prediction_shapes(self, plus_model, sample_blocks):
        predictions = plus_model.predict(sample_blocks[:6])
        for task in plus_model.tasks:
            assert predictions[task].shape == (6,)
            assert np.all(np.isfinite(predictions[task]))

    def test_deterministic_inference(self, vanilla_model, sample_blocks):
        first = vanilla_model.predict(sample_blocks[:4])
        second = vanilla_model.predict(sample_blocks[:4])
        for task in vanilla_model.tasks:
            np.testing.assert_allclose(first[task], second[task])

    def test_batch_independence(self, plus_model, sample_blocks):
        alone = plus_model.predict([sample_blocks[2]])
        batched = plus_model.predict(sample_blocks[:6])
        for task in plus_model.tasks:
            np.testing.assert_allclose(alone[task][0], batched[task][2], rtol=1e-7, atol=1e-9)

    def test_order_sensitivity(self, plus_model):
        """The LSTM is order sensitive: reversing a dependent sequence changes
        the block embedding and hence the prediction."""
        from repro.isa.basic_block import BasicBlock

        forward_block = BasicBlock.from_text("MOV RAX, 1\nIMUL RAX, RBX\nADD RCX, RAX")
        reversed_block = BasicBlock(tuple(reversed(forward_block.instructions)))
        first = plus_model.predict([forward_block])
        second = plus_model.predict([reversed_block])
        assert not np.allclose(first["haswell"], second["haswell"])

    def test_single_task_heads_are_independent(self, sample_blocks):
        """With separate decoder heads, different tasks give different outputs."""
        model = IthemalModel(IthemalConfig.small(plus=True, seed=5))
        predictions = model.predict(sample_blocks[:5])
        assert not np.allclose(predictions["ivy_bridge"], predictions["skylake"])


class TestTrainingBehaviour:
    def test_gradients_reach_lstms_and_embeddings(self, sample_blocks):
        model = IthemalModel(IthemalConfig.small(plus=True, seed=1))
        batch = model.encode_blocks(sample_blocks[:6])
        predictions = model.forward(batch)
        loss = mean_absolute_percentage_error(
            predictions["haswell"], Tensor(np.full(6, 400.0))
        )
        loss.backward()
        named = dict(model.named_parameters())
        groups = {"token_embedding": False, "instruction_lstm": False, "block_lstm": False, "decoders": False}
        for name, parameter in named.items():
            if parameter.grad is not None and np.abs(parameter.grad).sum() > 0:
                for group in groups:
                    if name.startswith(group):
                        groups[group] = True
        assert all(groups.values()), groups

    def test_few_steps_of_training_reduce_loss(self, sample_blocks):
        model = IthemalModel(IthemalConfig.small(plus=True, seed=2))
        optimizer = Adam(model.parameters(), learning_rate=2e-3)
        blocks = sample_blocks[:12]
        targets = Tensor(np.linspace(150.0, 600.0, len(blocks)))
        batch = model.encode_blocks(blocks)
        losses = []
        for _ in range(20):
            model.zero_grad()
            predictions = model.forward(batch)
            loss = mean_absolute_percentage_error(predictions["ivy_bridge"], targets)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
