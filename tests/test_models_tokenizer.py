"""Tests for the Ithemal tokenizer (repro.models.tokenizer)."""


from repro.graph.types import SpecialToken
from repro.isa.parser import parse_instruction
from repro.models.tokenizer import (
    DESTINATION_DELIMITER,
    END_DELIMITER,
    SOURCE_DELIMITER,
    build_ithemal_vocabulary,
    tokenize_block,
    tokenize_instruction,
)


class TestTokenizeInstruction:
    def test_paper_example_sbb(self):
        """The paper's example: SBB EAX, EBX -> SBB <S> EAX EBX <D> EAX <E>."""
        tokens = tokenize_instruction(parse_instruction("SBB EAX, EBX"))
        assert tokens == ["SBB", "<S>", "EAX", "EBX", "<D>", "EAX", "<E>"]

    def test_mov_does_not_read_destination(self):
        tokens = tokenize_instruction(parse_instruction("MOV EAX, EBX"))
        assert tokens == ["MOV", "<S>", "EBX", "<D>", "EAX", "<E>"]

    def test_immediate_uses_special_token(self):
        tokens = tokenize_instruction(parse_instruction("CMP R15D, 1"))
        assert SpecialToken.IMMEDIATE.value in tokens
        assert tokens.index(SpecialToken.IMMEDIATE.value) > tokens.index(SOURCE_DELIMITER)

    def test_memory_operand_contributes_address_registers(self):
        tokens = tokenize_instruction(parse_instruction("MOV RAX, QWORD PTR [RBX + RCX*4]"))
        source_section = tokens[tokens.index(SOURCE_DELIMITER): tokens.index(DESTINATION_DELIMITER)]
        assert "RBX" in source_section
        assert "RCX" in source_section
        assert SpecialToken.MEMORY_VALUE.value in source_section

    def test_memory_destination_in_destination_section(self):
        tokens = tokenize_instruction(parse_instruction("MOV DWORD PTR [RBP - 3], EAX"))
        destination_section = tokens[tokens.index(DESTINATION_DELIMITER):]
        assert SpecialToken.MEMORY_VALUE.value in destination_section

    def test_prefix_comes_first(self):
        tokens = tokenize_instruction(parse_instruction("LOCK ADD QWORD PTR [RAX], RBX"))
        assert tokens[0] == "LOCK"
        assert tokens[1] == "ADD"

    def test_every_instruction_ends_with_end_delimiter(self):
        tokens = tokenize_instruction(parse_instruction("CDQ"))
        assert tokens[-1] == END_DELIMITER

    def test_delimiters_always_present_and_ordered(self, sample_blocks):
        for block in sample_blocks[:20]:
            for instruction in block:
                tokens = tokenize_instruction(instruction)
                assert tokens.count(SOURCE_DELIMITER) == 1
                assert tokens.count(DESTINATION_DELIMITER) == 1
                assert tokens.count(END_DELIMITER) == 1
                assert (
                    tokens.index(SOURCE_DELIMITER)
                    < tokens.index(DESTINATION_DELIMITER)
                    < tokens.index(END_DELIMITER)
                )


class TestTokenizeBlock:
    def test_one_token_list_per_instruction(self, paper_example_block):
        tokenized = tokenize_block(paper_example_block)
        assert len(tokenized) == len(paper_example_block)
        assert tokenized[0][0] == "CMP"

    def test_empty_block(self):
        from repro.isa.basic_block import BasicBlock

        assert tokenize_block(BasicBlock([])) == []


class TestIthemalVocabulary:
    def test_contains_delimiters(self):
        vocabulary = build_ithemal_vocabulary()
        for token in (SOURCE_DELIMITER, DESTINATION_DELIMITER, END_DELIMITER):
            assert token in vocabulary

    def test_covers_tokenizer_output(self, sample_blocks):
        vocabulary = build_ithemal_vocabulary()
        unknown = 0
        total = 0
        for block in sample_blocks:
            for instruction in block:
                for token in tokenize_instruction(instruction):
                    total += 1
                    if vocabulary.id_of(token) == vocabulary.unknown_id:
                        unknown += 1
        assert unknown / total < 0.01
