"""Dtype behaviour of the no-grad inference fast path.

Covers the mixed-precision substrate the float32 serving mode stands on:
the ``compute_dtype`` context, dtype preservation through every fast-path
op, the version-keyed ``Parameter.data_as`` cast cache, and the dtype-aware
LayerNorm epsilon (regression: float32 normalisation of a constant-feature
block must not blow up or go non-finite).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Dense, LayerNorm
from repro.nn.lstm import LSTM
from repro.nn.module import Parameter
from repro.nn.tensor import (
    SUPPORTED_DTYPES,
    active_dtype,
    compute_dtype,
    concatenate,
    no_grad,
    raw,
    relu,
    resolve_dtype,
    segment_mean,
    segment_sum,
    sigmoid,
    stack,
    tanh,
)


class TestComputeDtypeContext:
    def test_default_is_float64(self):
        assert active_dtype() == np.float64

    def test_context_switches_and_restores(self):
        with compute_dtype("float32"):
            assert active_dtype() == np.float32
            with compute_dtype("float64"):
                assert active_dtype() == np.float64
            assert active_dtype() == np.float32
        assert active_dtype() == np.float64

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with compute_dtype("float32"):
                raise RuntimeError("boom")
        assert active_dtype() == np.float64

    def test_state_is_per_thread(self):
        """A float32 context on one thread must not leak into another.

        The serving stack predicts from several threads at once (async
        dispatcher + client threads), possibly in different precisions.
        """
        import threading

        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def hold_float32():
            with compute_dtype("float32"):
                observed["worker"] = active_dtype()
                entered.set()
                release.wait(timeout=10.0)

        worker = threading.Thread(target=hold_float32)
        worker.start()
        try:
            assert entered.wait(timeout=10.0)
            # The worker sits inside compute_dtype("float32"); this thread
            # must still see its own default.
            assert active_dtype() == np.float64
            assert observed["worker"] == np.float32
        finally:
            release.set()
            worker.join(timeout=10.0)

    def test_resolve_dtype_accepts_names_and_types(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64
        with pytest.raises(ValueError, match="unsupported compute dtype"):
            resolve_dtype("float16")
        assert SUPPORTED_DTYPES == ("float64", "float32")

    def test_raw_casts_to_active_dtype(self):
        values = np.arange(4, dtype=np.float64)
        assert raw(values) is values  # float64 default: identity, no copy
        with compute_dtype("float32"):
            cast = raw(values)
            assert cast.dtype == np.float32
            assert raw(cast) is cast  # already the active dtype: no copy


class TestFastPathDtypePreservation:
    """Every functional op keeps float32 float32 (no silent upcasts)."""

    def test_elementwise_ops(self):
        x = np.linspace(-2, 2, 8, dtype=np.float32)
        with compute_dtype("float32"):
            assert relu(x).dtype == np.float32
            assert tanh(x).dtype == np.float32
            assert sigmoid(x).dtype == np.float32
        # Outside the context the ops compute in the active (float64) dtype:
        # the context, not the operand, owns the precision decision.
        assert relu(x).dtype == np.float64

    def test_stack_and_concatenate(self):
        x = np.ones((2, 3), dtype=np.float32)
        with compute_dtype("float32"):
            assert stack([x, x]).dtype == np.float32
            assert concatenate([x, x], axis=-1).dtype == np.float32

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_segment_ops_accumulate_float64_return_float32(self, ndim):
        shape = (6,) + (3,) * (ndim - 1)
        values = np.random.default_rng(0).normal(size=shape).astype(np.float32)
        ids = np.array([0, 0, 1, 1, 2, 2])
        with compute_dtype("float32"):
            summed = segment_sum(values, ids, 3)
            averaged = segment_mean(values, ids, 3)
        assert summed.dtype == np.float32
        assert averaged.dtype == np.float32
        np.testing.assert_allclose(
            summed.sum(axis=0), values.sum(axis=0, dtype=np.float64), rtol=1e-6
        )

    def test_dense_and_lstm_forward_stay_float32(self):
        rng = np.random.default_rng(3)
        dense = Dense(4, 5, rng, activation="relu")
        lstm = LSTM(4, 6, rng)
        inputs = rng.normal(size=(2, 3, 4))
        with no_grad(), compute_dtype("float32"):
            assert dense(inputs[:, 0, :]).dtype == np.float32
            outputs, final_hidden = lstm(inputs, np.array([3, 2]))
            assert outputs.dtype == np.float32
            assert final_hidden.dtype == np.float32

    def test_tape_tensors_remain_float64(self):
        """Training precision is not configurable: the tape stays float64."""
        from repro.nn.tensor import Tensor

        with compute_dtype("float32"):
            tensor = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
            assert tensor.data.dtype == np.float64
            assert (tensor @ tensor).data.dtype == np.float64


class TestParameterCastCache:
    def test_float64_is_master_data(self):
        parameter = Parameter(np.ones((3,)))
        assert parameter.data_as(np.float64) is parameter.data

    def test_cast_is_cached_until_version_bump(self):
        parameter = Parameter(np.ones((3,)))
        first = parameter.data_as(np.float32)
        assert first.dtype == np.float32
        assert parameter.data_as(np.float32) is first  # cached
        parameter.data[...] = 2.0
        parameter.bump_version()
        second = parameter.data_as(np.float32)
        assert second is not first
        np.testing.assert_array_equal(second, np.full((3,), 2.0, dtype=np.float32))

    def test_load_state_dict_refreshes_casts(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        stale = layer.weight.data_as(np.float32)
        state = {name: value * 3.0 for name, value in layer.state_dict().items()}
        layer.load_state_dict(state)
        fresh = layer.weight.data_as(np.float32)
        assert fresh is not stale
        np.testing.assert_allclose(fresh, layer.weight.data.astype(np.float32))


class TestLayerNormDtype:
    def test_epsilon_floor_applies_to_float32_only(self):
        layer = LayerNorm(8, epsilon=1e-12)
        assert layer.epsilon_for(np.float64) == 1e-12
        assert layer.epsilon_for(np.float32) == LayerNorm.FLOAT32_EPSILON_FLOOR
        generous = LayerNorm(8, epsilon=1e-3)
        assert generous.epsilon_for(np.float32) == 1e-3  # floor, not override

    def test_constant_feature_block_does_not_blow_up_in_float32(self):
        """Regression: near-constant features + tiny epsilon used to be able
        to drive the float32 rsqrt to non-finite / huge values.  The float64
        statistics accumulation plus the epsilon floor keep the output
        bounded and finite."""
        layer = LayerNorm(16, epsilon=1e-12)
        constant = np.full((4, 16), 3.14159)
        near_constant = constant + np.random.default_rng(1).normal(
            scale=1e-6, size=constant.shape
        )
        with no_grad(), compute_dtype("float32"):
            for inputs in (constant, near_constant):
                outputs = layer(inputs)
                assert outputs.dtype == np.float32
                assert np.all(np.isfinite(outputs))
                # Normalised output of LayerNorm is bounded by sqrt(size)
                # whatever the variance; give rounding a little headroom.
                assert np.abs(outputs).max() <= np.sqrt(layer.size) + 1.0

    def test_float32_statistics_match_float64_on_regular_inputs(self):
        layer = LayerNorm(32)
        inputs = np.random.default_rng(2).normal(5.0, 3.0, size=(6, 32))
        with no_grad():
            expected = layer(inputs)
            with compute_dtype("float32"):
                actual = layer(inputs)
        np.testing.assert_allclose(actual, expected, atol=1e-5)
        # The float32 output is exactly mean-free to float32 resolution
        # because the statistics are accumulated in float64.
        assert np.abs(np.asarray(actual, dtype=np.float64).mean(axis=-1)).max() < 1e-6
