"""Numeric gradient checks for the training fast path (repro.testing.gradcheck).

Every fused op of ``repro.nn.fused``, the ``scatter_rows`` primitive, the
bincount-rewritten scatter/segment backwards and the composed layer
implementations they replace are verified against central-difference
gradients — in both fusion modes where both exist, plus a fused-vs-composed
cross-check that the two tapes produce the same gradients.
"""

import numpy as np
import pytest

from repro.nn.fused import fused_dense, fused_layer_norm, fused_lstm_step
from repro.nn.layers import Dense, LayerNorm
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.tensor import (
    Tensor,
    concatenate,
    scatter_rows,
    stack,
    use_fused_ops,
    where,
)
from repro.testing.gradcheck import gradcheck, numeric_gradient


@pytest.fixture(params=[True, False], ids=["fused", "composed"])
def fused_mode(request):
    """Runs the test body under both tape modes."""
    with use_fused_ops(request.param):
        yield request.param


def _tensor(rng, shape, scale=1.0):
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=True)


class TestGradcheckHarness:
    def test_numeric_gradient_of_quadratic(self):
        array = np.array([1.0, -2.0, 3.0])
        gradient = numeric_gradient(lambda: float((array**2).sum()), array)
        np.testing.assert_allclose(gradient, 2.0 * array, atol=1e-6)

    def test_gradcheck_detects_wrong_backward(self, rng):
        values = _tensor(rng, (3,))

        def wrong():
            # A node whose backward doubles the true gradient.
            out = Tensor._make(
                values.data * 2.0, (values,), lambda g: values._accumulate(4.0 * g)
            )
            return out

        with pytest.raises(AssertionError, match="gradient check failed"):
            gradcheck(wrong, {"values": values})


class TestFusedDense:
    @pytest.mark.parametrize("activation", [None, "relu", "tanh", "sigmoid"])
    def test_against_numeric(self, rng, activation):
        inputs = _tensor(rng, (5, 4))
        weight = _tensor(rng, (4, 3))
        bias = _tensor(rng, (3,))
        gradcheck(
            lambda: fused_dense(inputs, weight, bias, activation),
            {"inputs": inputs, "weight": weight, "bias": bias},
        )

    def test_without_bias(self, rng):
        inputs = _tensor(rng, (4, 3))
        weight = _tensor(rng, (3, 2))
        gradcheck(
            lambda: fused_dense(inputs, weight, None, "relu"),
            {"inputs": inputs, "weight": weight},
        )

    def test_rejects_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            fused_dense(_tensor(rng, (2, 2)), _tensor(rng, (2, 2)), None, "gelu")

    def test_matches_composed_dense_layer(self, rng):
        layer = Dense(4, 3, rng, activation="tanh")
        inputs = rng.normal(size=(6, 4))

        def run():
            layer.zero_grad()
            tensor = Tensor(inputs, requires_grad=True)
            layer(tensor).sum().backward()
            return tensor.grad, layer.weight.grad.copy(), layer.bias.grad.copy()

        with use_fused_ops(True):
            fused_grads = run()
        with use_fused_ops(False):
            composed_grads = run()
        for fused_grad, composed_grad in zip(fused_grads, composed_grads):
            np.testing.assert_allclose(fused_grad, composed_grad, rtol=1e-12, atol=1e-12)


class TestFusedLayerNorm:
    def test_against_numeric(self, rng):
        inputs = _tensor(rng, (5, 6))
        gain = Tensor(np.ones(6) + 0.1 * rng.normal(size=6), requires_grad=True)
        offset = _tensor(rng, (6,))
        gradcheck(
            lambda: fused_layer_norm(inputs, gain, offset, epsilon=1e-5),
            {"inputs": inputs, "gain": gain, "offset": offset},
            atol=1e-5,
        )

    def test_matches_composed_layer(self, rng):
        layer = LayerNorm(8)
        inputs = rng.normal(size=(5, 8))

        def run():
            layer.zero_grad()
            tensor = Tensor(inputs, requires_grad=True)
            (layer(tensor) ** 2.0).sum().backward()
            return tensor.grad, layer.gain.grad.copy(), layer.offset.grad.copy()

        with use_fused_ops(True):
            fused_grads = run()
        with use_fused_ops(False):
            composed_grads = run()
        for fused_grad, composed_grad in zip(fused_grads, composed_grads):
            np.testing.assert_allclose(fused_grad, composed_grad, rtol=1e-9, atol=1e-11)


class TestFusedLSTMStep:
    def _operands(self, rng, batch=3, input_size=4, hidden_size=5):
        return {
            "inputs": _tensor(rng, (batch, input_size)),
            "hidden": _tensor(rng, (batch, hidden_size), scale=0.5),
            "cell": _tensor(rng, (batch, hidden_size), scale=0.5),
            "weight_input": _tensor(rng, (input_size, 4 * hidden_size), scale=0.3),
            "weight_hidden": _tensor(rng, (hidden_size, 4 * hidden_size), scale=0.3),
            "bias": _tensor(rng, (4 * hidden_size,), scale=0.1),
        }

    def test_against_numeric(self, rng):
        operands = self._operands(rng)
        gradcheck(lambda: fused_lstm_step(**operands), operands, atol=1e-5)

    def test_against_numeric_with_mask(self, rng):
        operands = self._operands(rng)
        mask = np.array([True, False, True])
        gradcheck(lambda: fused_lstm_step(**operands, mask=mask), operands, atol=1e-5)

    def test_masked_rows_keep_previous_state(self, rng):
        operands = self._operands(rng)
        mask = np.array([True, False, True])
        state = fused_lstm_step(**operands, mask=mask)
        hidden_size = operands["hidden"].shape[1]
        np.testing.assert_allclose(
            state.data[1, :hidden_size], operands["hidden"].data[1]
        )
        np.testing.assert_allclose(
            state.data[1, hidden_size:], operands["cell"].data[1]
        )

    def test_matches_composed_cell(self, rng):
        cell = LSTMCell(4, 5, rng)
        inputs = rng.normal(size=(3, 4))

        def run():
            cell.zero_grad()
            tensor = Tensor(inputs, requires_grad=True)
            hidden, (_, new_cell) = cell(tensor, cell.initial_state(3))
            (hidden.sum() + (new_cell * 0.5).sum()).backward()
            return (
                tensor.grad,
                cell.weight_input.grad.copy(),
                cell.weight_hidden.grad.copy(),
                cell.bias.grad.copy(),
            )

        with use_fused_ops(True):
            fused_grads = run()
        with use_fused_ops(False):
            composed_grads = run()
        for fused_grad, composed_grad in zip(fused_grads, composed_grads):
            np.testing.assert_allclose(fused_grad, composed_grad, rtol=1e-10, atol=1e-12)


class TestLSTMLayer:
    def test_against_numeric_with_lengths(self, rng, fused_mode):
        lstm = LSTM(3, 4, rng)
        inputs = _tensor(rng, (2, 5, 3))
        lengths = np.array([5, 3])
        parameters = {
            "inputs": inputs,
            "weight_input": lstm.cell.weight_input,
            "weight_hidden": lstm.cell.weight_hidden,
            "bias": lstm.cell.bias,
        }

        def build():
            _, final_hidden = lstm(inputs, lengths, need_outputs=False)
            return final_hidden

        gradcheck(build, parameters, atol=1e-5)

    def test_fused_matches_composed_final_state_and_gradients(self, rng):
        lstm = LSTM(3, 4, rng)
        sequences = rng.normal(size=(3, 6, 3))
        lengths = np.array([6, 2, 4])

        def run():
            lstm.zero_grad()
            tensor = Tensor(sequences, requires_grad=True)
            _, final_hidden = lstm(tensor, lengths)
            (final_hidden**2.0).sum().backward()
            return final_hidden.data.copy(), tensor.grad, lstm.cell.weight_input.grad.copy()

        with use_fused_ops(True):
            fused_final, fused_input_grad, fused_weight_grad = run()
        with use_fused_ops(False):
            composed_final, composed_input_grad, composed_weight_grad = run()
        np.testing.assert_array_equal(fused_final, composed_final)
        np.testing.assert_allclose(fused_input_grad, composed_input_grad, rtol=1e-10, atol=1e-13)
        np.testing.assert_allclose(fused_weight_grad, composed_weight_grad, rtol=1e-10, atol=1e-13)


class TestScatterGatherBackwards:
    def test_scatter_rows_against_numeric(self, rng):
        values = _tensor(rng, (4, 3))
        indices = np.array([5, 0, 2, 3])
        gradcheck(lambda: scatter_rows(values, indices, 7), {"values": values})

    def test_scatter_rows_matches_permutation_matmul(self, rng):
        values = _tensor(rng, (4, 3))
        indices = np.array([5, 0, 2, 3])
        scattered = scatter_rows(values, indices, 7)
        permutation = np.zeros((7, 4))
        permutation[indices, np.arange(4)] = 1.0
        np.testing.assert_array_equal(scattered.data, permutation @ values.data)

    def test_gather_rows_with_duplicates(self, rng, fused_mode):
        values = _tensor(rng, (4, 3))
        indices = np.array([0, 2, 2, 1, 0, 2])
        gradcheck(lambda: values.gather_rows(indices), {"values": values})

    def test_gather_rows_multidimensional_indices(self, rng, fused_mode):
        values = _tensor(rng, (5, 2))
        indices = np.array([[0, 4], [4, 3]])
        gradcheck(lambda: values.gather_rows(indices), {"values": values})

    def test_getitem_integer_array(self, rng, fused_mode):
        values = _tensor(rng, (5, 3))
        key = np.array([1, 1, 4, 0])
        gradcheck(lambda: values[key], {"values": values})

    def test_negative_indices_wrap_like_numpy(self, rng, fused_mode):
        values = _tensor(rng, (5, 3))
        key = np.array([-1, 0, -1, 2])
        gradcheck(lambda: values[key], {"values": values})
        gradcheck(lambda: values.gather_rows(np.array([-2, 1])), {"values": values})

    def test_getitem_basic_slice(self, rng, fused_mode):
        values = _tensor(rng, (4, 5))
        gradcheck(lambda: values[:, 1:4], {"values": values})

    def test_getitem_time_slice(self, rng, fused_mode):
        values = _tensor(rng, (2, 4, 3))
        gradcheck(lambda: values[:, 2, :], {"values": values})


class TestSegmentBackwards:
    def test_segment_sum(self, rng, fused_mode):
        values = _tensor(rng, (6, 3))
        segment_ids = np.array([0, 2, 2, 1, 0, 2])
        gradcheck(lambda: values.segment_sum(segment_ids, 4), {"values": values})

    def test_segment_mean(self, rng, fused_mode):
        values = _tensor(rng, (5, 2))
        segment_ids = np.array([1, 1, 0, 2, 2])
        gradcheck(lambda: values.segment_mean(segment_ids, 3), {"values": values})

    def test_segment_sum_forward_identical_across_modes(self, rng):
        values = rng.normal(size=(64, 7))
        segment_ids = rng.integers(0, 9, size=64)
        with use_fused_ops(True):
            fused = Tensor(values).segment_sum(segment_ids, 9).data
        with use_fused_ops(False):
            composed = Tensor(values).segment_sum(segment_ids, 9).data
        np.testing.assert_allclose(fused, composed, rtol=1e-15, atol=1e-15)


class TestElementwiseTapeOps:
    """Every elementwise tape op checks against central differences.

    Ops with kinks (relu/abs/clip) or data-dependent branches (max) use
    inputs held away from the non-differentiable points so the central
    difference is valid.
    """

    _SMOOTH_OPS = {
        "exp": lambda t: t.exp(),
        "sigmoid": lambda t: t.sigmoid(),
        "softplus": lambda t: t.softplus(),
        "tanh": lambda t: t.tanh(),
    }

    @pytest.mark.parametrize("op", sorted(_SMOOTH_OPS))
    def test_smooth_unary(self, rng, op):
        values = _tensor(rng, (3, 4), scale=0.8)
        gradcheck(lambda: self._SMOOTH_OPS[op](values), {"values": values})

    def test_log_and_sqrt_on_positive_domain(self, rng):
        values = Tensor(rng.uniform(0.5, 3.0, size=(3, 4)), requires_grad=True)
        gradcheck(lambda: values.log(), {"values": values})
        gradcheck(lambda: values.sqrt(), {"values": values})

    def test_truediv(self, rng):
        numerator = _tensor(rng, (3, 4))
        denominator = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        gradcheck(
            lambda: numerator / denominator,
            {"numerator": numerator, "denominator": denominator},
        )

    def test_relu_and_abs_away_from_zero(self, rng):
        data = rng.normal(size=(3, 4))
        data += np.sign(data) * 0.5  # keep every entry away from the kink at 0
        values = Tensor(data, requires_grad=True)
        gradcheck(lambda: values.relu(), {"values": values})
        gradcheck(lambda: values.abs(), {"values": values})

    def test_clip_away_from_boundaries(self):
        values = Tensor(
            np.array([[-1.6, -0.8, -0.2], [0.1, 0.7, 1.8]]), requires_grad=True
        )
        gradcheck(lambda: values.clip(-1.0, 1.0), {"values": values})

    def test_max_global_and_per_axis(self, rng):
        values = _tensor(rng, (3, 4))
        gradcheck(lambda: values.max(), {"values": values})
        gradcheck(lambda: values.max(axis=1), {"values": values})


class TestShapeTapeOps:
    def test_matmul_batched(self, rng):
        left = _tensor(rng, (2, 3, 4))
        right = _tensor(rng, (2, 4, 5))
        gradcheck(lambda: left.matmul(right), {"left": left, "right": right})

    def test_transpose_default_and_explicit_axes(self, rng):
        values = _tensor(rng, (2, 3, 4))
        gradcheck(lambda: values.transpose(), {"values": values})
        gradcheck(lambda: values.transpose((1, 0, 2)), {"values": values})

    def test_reshape_varargs_and_tuple(self, rng):
        values = _tensor(rng, (2, 6))
        gradcheck(lambda: values.reshape(3, 4), {"values": values})
        gradcheck(lambda: values.reshape((4, 3)), {"values": values})

    def test_concatenate_method_and_module_function(self, rng):
        first = _tensor(rng, (2, 3))
        second = _tensor(rng, (2, 2))
        parameters = {"first": first, "second": second}
        gradcheck(lambda: first.concatenate([second], axis=1), parameters)
        gradcheck(lambda: concatenate([first, second], axis=-1), parameters)

    def test_stack(self, rng):
        first = _tensor(rng, (2, 3))
        second = _tensor(rng, (2, 3))
        gradcheck(
            lambda: stack([first, second], axis=0),
            {"first": first, "second": second},
        )

    def test_where(self, rng):
        condition = np.array([[True, False, True], [False, True, False]])
        on_true = _tensor(rng, (2, 3))
        on_false = _tensor(rng, (2, 3))
        gradcheck(
            lambda: where(condition, on_true, on_false),
            {"on_true": on_true, "on_false": on_false},
        )


class TestComposedLayersStillCheck:
    """The legacy composed implementations stay gradcheck-clean too."""

    def test_dense(self, rng, fused_mode):
        layer = Dense(3, 2, rng, activation="sigmoid")
        inputs = _tensor(rng, (4, 3))
        gradcheck(
            lambda: layer(inputs),
            {"inputs": inputs, "weight": layer.weight, "bias": layer.bias},
        )

    def test_layer_norm(self, rng, fused_mode):
        layer = LayerNorm(5)
        inputs = _tensor(rng, (3, 5))
        gradcheck(
            lambda: layer(inputs),
            {"inputs": inputs, "gain": layer.gain, "offset": layer.offset},
            atol=1e-5,
        )
