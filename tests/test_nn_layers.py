"""Tests for neural network layers (repro.nn.layers)."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Embedding, LayerNorm, MLP, ResidualMLP, Sequential
from repro.nn.tensor import Tensor


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(4, 3, rng)
        output = layer(Tensor(np.ones((5, 4))))
        assert output.shape == (5, 3)

    def test_linear_no_activation(self, rng):
        layer = Dense(2, 2, rng, activation=None, use_bias=False)
        identity = np.eye(2)
        np.testing.assert_allclose(layer(Tensor(identity)).data, layer.weight.data)

    def test_relu_activation_nonnegative(self, rng):
        layer = Dense(4, 8, rng, activation="relu")
        output = layer(Tensor(rng.normal(size=(10, 4))))
        assert np.all(output.data >= 0.0)

    def test_tanh_and_sigmoid_ranges(self, rng):
        tanh_layer = Dense(4, 4, rng, activation="tanh")
        sigmoid_layer = Dense(4, 4, rng, activation="sigmoid")
        inputs = Tensor(rng.normal(size=(6, 4)) * 5)
        assert np.all(np.abs(tanh_layer(inputs).data) <= 1.0)
        assert np.all((sigmoid_layer(inputs).data >= 0.0) & (sigmoid_layer(inputs).data <= 1.0))

    def test_invalid_activation_rejected(self, rng):
        with pytest.raises(ValueError):
            Dense(4, 4, rng, activation="swish")

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 4, rng)

    def test_gradients_reach_parameters(self, rng):
        layer = Dense(3, 2, rng)
        loss = layer(Tensor(np.ones((4, 3)))).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_no_bias_option(self, rng):
        layer = Dense(3, 2, rng, use_bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestMLP:
    def test_output_shape_and_depth(self, rng):
        mlp = MLP(4, [8, 8], 2, rng)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(np.ones((5, 4)))).shape == (5, 2)

    def test_no_hidden_layers(self, rng):
        mlp = MLP(4, [], 2, rng)
        assert len(mlp.layers) == 1

    def test_output_activation(self, rng):
        mlp = MLP(4, [8], 3, rng, output_activation="relu")
        assert np.all(mlp(Tensor(rng.normal(size=(5, 4)))).data >= 0.0)

    def test_parameter_count(self, rng):
        mlp = MLP(4, [8], 2, rng)
        expected = 4 * 8 + 8 + 8 * 2 + 2
        assert mlp.num_parameters() == expected


class TestLayerNorm:
    def test_output_is_normalised_at_init(self, rng):
        layer = LayerNorm(16)
        output = layer(Tensor(rng.normal(3.0, 5.0, size=(8, 16)))).data
        np.testing.assert_allclose(output.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(output.std(axis=-1), 1.0, atol=1e-2)

    def test_gain_and_offset_applied(self, rng):
        layer = LayerNorm(4)
        layer.gain.data[...] = 2.0
        layer.offset.data[...] = 1.0
        output = layer(Tensor(rng.normal(size=(3, 4)))).data
        np.testing.assert_allclose(output.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradient_flows(self, rng):
        layer = LayerNorm(8)
        inputs = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        layer(inputs).sum().backward()
        assert inputs.grad is not None
        assert layer.gain.grad is not None

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            LayerNorm(0)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        embedding = Embedding(10, 4, rng)
        output = embedding(np.array([0, 3, 3, 9]))
        assert output.shape == (4, 4)
        np.testing.assert_allclose(output.data[1], output.data[2])

    def test_out_of_range_index_rejected(self, rng):
        embedding = Embedding(10, 4, rng)
        with pytest.raises(IndexError):
            embedding(np.array([10]))
        with pytest.raises(IndexError):
            embedding(np.array([-1]))

    def test_gradient_accumulates_per_row(self, rng):
        embedding = Embedding(5, 3, rng)
        output = embedding(np.array([1, 1, 2]))
        output.sum().backward()
        np.testing.assert_allclose(embedding.table.grad[1], 2.0)
        np.testing.assert_allclose(embedding.table.grad[2], 1.0)
        np.testing.assert_allclose(embedding.table.grad[0], 0.0)


class TestResidualMLP:
    def test_same_size_residual_is_identity_plus_mlp(self, rng):
        block = ResidualMLP(4, [8], 4, rng)
        assert block.projection is None
        inputs = Tensor(rng.normal(size=(3, 4)))
        assert block(inputs).shape == (3, 4)

    def test_projection_created_when_sizes_differ(self, rng):
        block = ResidualMLP(4, [8], 2, rng)
        assert block.projection is not None
        assert block(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_disable_layer_norm(self, rng):
        block = ResidualMLP(4, [8], 4, rng, use_layer_norm=False)
        assert block.layer_norm is None

    def test_disable_residual(self, rng):
        block = ResidualMLP(4, [8], 4, rng, use_residual=False)
        zeroed = Tensor(np.zeros((2, 4)))
        # Without residual the output for zero input is just the MLP output.
        assert block(zeroed).shape == (2, 4)

    def test_residual_dominates_for_large_inputs(self, rng):
        block = ResidualMLP(4, [4], 4, rng)
        large = Tensor(np.full((1, 4), 1000.0))
        output = block(large).data
        # Layer norm bounds the MLP branch, so the output stays near the input.
        np.testing.assert_allclose(output, 1000.0, rtol=0.05)


class TestSequential:
    def test_applies_layers_in_order(self, rng):
        model = Sequential([Dense(4, 8, rng, activation="relu"), Dense(8, 2, rng)])
        assert model(Tensor(np.ones((3, 4)))).shape == (3, 2)
        assert len(model.parameters()) == 4
