"""Tests for the loss functions (repro.nn.losses)."""

import numpy as np
import pytest

from repro.nn.losses import (
    LOSS_FUNCTIONS,
    get_loss,
    huber_loss,
    mean_absolute_percentage_error,
    mean_squared_error,
    relative_huber_loss,
    relative_mean_squared_error,
)
from repro.nn.tensor import Tensor


class TestMAPE:
    def test_perfect_prediction_is_zero(self):
        actual = Tensor([100.0, 200.0])
        assert mean_absolute_percentage_error(actual, actual).item() == pytest.approx(0.0)

    def test_known_value(self):
        predicted = Tensor([90.0, 220.0])
        actual = Tensor([100.0, 200.0])
        # errors: 10/100 = 0.1 and 20/200 = 0.1 -> mean 0.1
        assert mean_absolute_percentage_error(predicted, actual).item() == pytest.approx(0.1, rel=1e-4)

    def test_scale_invariance(self):
        predicted = Tensor([90.0, 110.0])
        actual = Tensor([100.0, 100.0])
        small = mean_absolute_percentage_error(predicted, actual).item()
        large = mean_absolute_percentage_error(predicted * 1000.0, actual * 1000.0).item()
        assert small == pytest.approx(large, rel=1e-5)

    def test_gradient_sign(self):
        predicted = Tensor([50.0], requires_grad=True)
        actual = Tensor([100.0])
        mean_absolute_percentage_error(predicted, actual).backward()
        # Underestimate: increasing the prediction reduces the loss.
        assert predicted.grad[0] < 0


class TestMSE:
    def test_known_value(self):
        loss = mean_squared_error(Tensor([1.0, 3.0]), Tensor([2.0, 1.0]))
        assert loss.item() == pytest.approx((1.0 + 4.0) / 2)

    def test_relative_mse_normalises(self):
        predicted = Tensor([90.0])
        actual = Tensor([100.0])
        assert relative_mean_squared_error(predicted, actual).item() == pytest.approx(0.01, rel=1e-4)

    def test_mse_not_scale_invariant_but_relative_is(self):
        predicted, actual = Tensor([90.0]), Tensor([100.0])
        assert mean_squared_error(predicted * 10, actual * 10).item() > mean_squared_error(predicted, actual).item()
        assert relative_mean_squared_error(predicted * 10, actual * 10).item() == pytest.approx(
            relative_mean_squared_error(predicted, actual).item(), rel=1e-5
        )


class TestHuber:
    def test_quadratic_region(self):
        loss = huber_loss(Tensor([0.5]), Tensor([0.0]))
        assert loss.item() == pytest.approx(0.125)

    def test_linear_region(self):
        loss = huber_loss(Tensor([3.0]), Tensor([0.0]))
        assert loss.item() == pytest.approx(3.0 - 0.5)

    def test_continuity_at_delta(self):
        below = huber_loss(Tensor([0.999999]), Tensor([0.0])).item()
        above = huber_loss(Tensor([1.000001]), Tensor([0.0])).item()
        assert below == pytest.approx(above, abs=1e-4)

    def test_custom_delta(self):
        loss = huber_loss(Tensor([4.0]), Tensor([0.0]), delta=2.0)
        assert loss.item() == pytest.approx(2.0 * 4.0 - 0.5 * 4.0)

    def test_less_sensitive_to_outliers_than_mse(self):
        predicted = Tensor([0.0, 100.0])
        actual = Tensor([0.0, 0.0])
        assert huber_loss(predicted, actual).item() < mean_squared_error(predicted, actual).item()

    def test_relative_huber_scale_invariance(self):
        predicted, actual = Tensor([80.0, 120.0]), Tensor([100.0, 100.0])
        assert relative_huber_loss(predicted * 7, actual * 7).item() == pytest.approx(
            relative_huber_loss(predicted, actual).item(), rel=1e-5
        )


class TestRegistry:
    def test_all_table9_losses_registered(self):
        assert set(LOSS_FUNCTIONS) == {"mape", "mse", "relative_mse", "huber", "relative_huber"}

    def test_get_loss_case_insensitive(self):
        assert get_loss("MAPE") is mean_absolute_percentage_error

    def test_unknown_loss_raises(self):
        with pytest.raises(KeyError):
            get_loss("cross_entropy")

    def test_all_losses_are_differentiable(self):
        for name, loss_fn in LOSS_FUNCTIONS.items():
            predicted = Tensor([90.0, 110.0, 95.0], requires_grad=True)
            actual = Tensor([100.0, 100.0, 100.0])
            loss_fn(predicted, actual).backward()
            assert predicted.grad is not None, name
            assert np.all(np.isfinite(predicted.grad)), name

    def test_all_losses_nonnegative(self):
        rng = np.random.default_rng(0)
        predicted = Tensor(rng.uniform(10, 500, size=20))
        actual = Tensor(rng.uniform(10, 500, size=20))
        for name, loss_fn in LOSS_FUNCTIONS.items():
            assert loss_fn(predicted, actual).item() >= 0.0, name
