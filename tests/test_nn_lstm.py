"""Tests for the LSTM layers (repro.nn.lstm)."""

import numpy as np
import pytest

from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.tensor import Tensor


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(4, 8, rng)
        hidden, (new_hidden, new_cell) = cell(
            Tensor(np.ones((3, 4))), cell.initial_state(3)
        )
        assert hidden.shape == (3, 8)
        assert new_hidden.shape == (3, 8)
        assert new_cell.shape == (3, 8)

    def test_hidden_state_is_bounded(self, rng):
        cell = LSTMCell(4, 8, rng)
        state = cell.initial_state(2)
        inputs = Tensor(rng.normal(0, 10, size=(2, 4)))
        for _ in range(20):
            hidden, state = cell(inputs, state)
        assert np.all(np.abs(hidden.data) <= 1.0)

    def test_forget_gate_bias_initialised_to_one(self, rng):
        cell = LSTMCell(4, 8, rng)
        np.testing.assert_allclose(cell.bias.data[8:16], 1.0)

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            LSTMCell(0, 8, rng)

    def test_gradients_flow_through_time(self, rng):
        cell = LSTMCell(3, 5, rng)
        inputs = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        state = cell.initial_state(2)
        for _ in range(4):
            hidden, state = cell(inputs, state)
        hidden.sum().backward()
        assert inputs.grad is not None
        assert cell.weight_input.grad is not None
        assert cell.weight_hidden.grad is not None


class TestLSTM:
    def test_output_shapes(self, rng):
        lstm = LSTM(4, 6, rng)
        outputs, final = lstm(Tensor(rng.normal(size=(3, 5, 4))))
        assert outputs.shape == (3, 5, 6)
        assert final.shape == (3, 6)

    def test_final_state_equals_last_output_without_padding(self, rng):
        lstm = LSTM(4, 6, rng)
        outputs, final = lstm(Tensor(rng.normal(size=(2, 5, 4))))
        np.testing.assert_allclose(outputs.data[:, -1, :], final.data)

    def test_length_masking_freezes_state(self, rng):
        lstm = LSTM(4, 6, rng)
        sequences = rng.normal(size=(2, 6, 4))
        lengths = np.array([3, 6])
        _, masked_final = lstm(Tensor(sequences.copy()), lengths)
        # Changing the padded suffix of the first sequence must not change
        # its final state.
        modified = sequences.copy()
        modified[0, 3:, :] = 99.0
        _, modified_final = lstm(Tensor(modified), lengths)
        np.testing.assert_allclose(masked_final.data[0], modified_final.data[0])
        np.testing.assert_allclose(masked_final.data[1], modified_final.data[1])

    def test_masked_final_state_matches_truncated_sequence(self, rng):
        lstm = LSTM(3, 5, rng)
        sequence = rng.normal(size=(1, 7, 3))
        _, final_masked = lstm(Tensor(sequence), np.array([4]))
        _, final_truncated = lstm(Tensor(sequence[:, :4, :]), np.array([4]))
        np.testing.assert_allclose(final_masked.data, final_truncated.data, atol=1e-10)

    def test_gradients_reach_embedding_inputs(self, rng):
        lstm = LSTM(3, 4, rng)
        inputs = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        _, final = lstm(inputs, np.array([4, 2]))
        final.sum().backward()
        assert inputs.grad is not None
        # Gradient of the padded steps of the shorter sequence must be zero.
        np.testing.assert_allclose(inputs.grad[1, 2:, :], 0.0)
        assert np.abs(inputs.grad[1, :2, :]).sum() > 0.0
