"""Tests for Module, Parameter and checkpoint serialization."""

import numpy as np
import pytest

from repro.nn.layers import Dense, MLP
from repro.nn.module import Module, Parameter
from repro.nn.serialization import checkpoint_to_dict, load_checkpoint, save_checkpoint
from repro.nn.tensor import Tensor, no_grad


class _Composite(Module):
    """A module with nested children, lists and dicts of sub-modules."""

    def __init__(self, rng):
        self.encoder = Dense(4, 8, rng)
        self.heads = {"a": Dense(8, 1, rng), "b": Dense(8, 1, rng)}
        self.stack = [Dense(8, 8, rng), Dense(8, 8, rng)]
        self.scale = Parameter(np.array([1.0]), name="scale")

    def forward(self, inputs):
        hidden = self.encoder(inputs)
        return self.heads["a"](hidden) + self.heads["b"](hidden) * self.scale


class TestParameterDiscovery:
    def test_parameters_found_in_nested_structures(self, rng):
        module = _Composite(rng)
        # encoder (2) + 2 heads (2 each) + 2 stacked (2 each) + scale = 11
        assert len(module.parameters()) == 11

    def test_named_parameters_have_unique_paths(self, rng):
        module = _Composite(rng)
        names = [name for name, _ in module.named_parameters()]
        assert len(names) == len(set(names))
        assert any(name.startswith("heads.a") for name in names)
        assert any(name.startswith("stack.1") for name in names)

    def test_shared_parameter_listed_once(self, rng):
        module = _Composite(rng)
        module.alias = module.scale  # same Parameter reachable twice
        assert sum(1 for _, p in module.named_parameters() if p is module.scale) == 1

    def test_num_parameters(self, rng):
        dense = Dense(3, 2, rng)
        assert dense.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears_all(self, rng):
        module = _Composite(rng)
        module(Tensor(np.ones((2, 4)))).sum().backward()
        assert any(parameter.grad is not None for parameter in module.parameters())
        module.zero_grad()
        assert all(parameter.grad is None for parameter in module.parameters())

    def test_parameter_requires_grad_even_inside_no_grad(self):
        with no_grad():
            parameter = Parameter(np.zeros(3))
        assert parameter.requires_grad


class TestStateDict:
    def test_round_trip(self, rng):
        module = MLP(4, [8], 2, rng)
        state = module.state_dict()
        clone = MLP(4, [8], 2, np.random.default_rng(99))
        clone.load_state_dict(state)
        inputs = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(module(inputs).data, clone(inputs).data)

    def test_state_dict_is_a_copy(self, rng):
        module = Dense(2, 2, rng)
        state = module.state_dict()
        state["weight"][...] = 0.0
        assert not np.allclose(module.weight.data, 0.0)

    def test_missing_key_raises(self, rng):
        module = Dense(2, 2, rng)
        state = module.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        module = Dense(2, 2, rng)
        state = module.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            module.load_state_dict(state)


class TestCheckpointFiles:
    def test_save_and_load(self, rng, tmp_path):
        module = MLP(4, [8], 2, rng)
        path = str(tmp_path / "checkpoints" / "model.npz")
        save_checkpoint(module, path)
        clone = MLP(4, [8], 2, np.random.default_rng(123))
        load_checkpoint(clone, path)
        inputs = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(module(inputs).data, clone(inputs).data)

    def test_checkpoint_to_dict_keys(self, rng, tmp_path):
        module = Dense(2, 3, rng)
        path = str(tmp_path / "dense.npz")
        save_checkpoint(module, path)
        state = checkpoint_to_dict(path)
        assert set(state) == {"weight", "bias"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            checkpoint_to_dict(str(tmp_path / "missing.npz"))
