"""Tests for optimizers and gradient utilities (repro.nn.optim)."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.module import Parameter
from repro.nn.optim import (
    Adam,
    SGD,
    clip_gradients_by_global_norm,
    global_gradient_norm,
)
from repro.nn.tensor import Tensor


def quadratic_loss(parameter: Parameter) -> Tensor:
    """Simple convex objective with minimum at 3.0."""
    difference = parameter - 3.0
    return (difference * difference).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([0.0]))
        momentum = Parameter(np.array([0.0]))
        sgd_plain = SGD([plain], learning_rate=0.01)
        sgd_momentum = SGD([momentum], learning_rate=0.01, momentum=0.9)
        for _ in range(30):
            for parameter, optimizer in ((plain, sgd_plain), (momentum, sgd_momentum)):
                optimizer.zero_grad()
                quadratic_loss(parameter).backward()
                optimizer.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], learning_rate=0.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([10.0]))
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_step_without_gradient_is_noop(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter])
        optimizer.step()
        assert parameter.data[0] == pytest.approx(1.0)

    def test_first_step_size_bounded_by_learning_rate(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], learning_rate=0.001)
        parameter.grad = np.array([1000.0])
        optimizer.step()
        assert abs(parameter.data[0]) <= 0.0011

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], learning_rate=-1.0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], beta1=1.5)

    def test_trains_a_dense_layer_to_fit_data(self, rng):
        layer = Dense(2, 1, rng)
        optimizer = Adam(layer.parameters(), learning_rate=0.05)
        inputs = rng.normal(size=(64, 2))
        targets = inputs @ np.array([[2.0], [-1.0]]) + 0.5
        for _ in range(300):
            optimizer.zero_grad()
            predicted = layer(Tensor(inputs))
            difference = predicted - Tensor(targets)
            (difference * difference).mean().backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, [[2.0], [-1.0]], atol=0.05)
        np.testing.assert_allclose(layer.bias.data, [0.5], atol=0.05)


class TestGradientClipping:
    def test_global_norm_computation(self):
        first = Parameter(np.zeros(2))
        second = Parameter(np.zeros(2))
        first.grad = np.array([3.0, 0.0])
        second.grad = np.array([0.0, 4.0])
        assert global_gradient_norm([first, second]) == pytest.approx(5.0)

    def test_clipping_scales_down(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.array([30.0, 40.0])
        returned_norm = clip_gradients_by_global_norm([parameter], max_norm=5.0)
        assert returned_norm == pytest.approx(50.0)
        assert global_gradient_norm([parameter]) == pytest.approx(5.0)

    def test_no_clipping_below_threshold(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.array([1.0, 1.0])
        clip_gradients_by_global_norm([parameter], max_norm=10.0)
        np.testing.assert_allclose(parameter.grad, [1.0, 1.0])

    def test_parameters_without_gradients_ignored(self):
        with_grad = Parameter(np.zeros(1))
        with_grad.grad = np.array([2.0])
        without_grad = Parameter(np.zeros(1))
        assert global_gradient_norm([with_grad, without_grad]) == pytest.approx(2.0)
