"""Tests for the autodiff engine (repro.nn.tensor).

Every differentiable operation is checked against numerical (finite
difference) gradients, which is the strongest correctness guarantee we can
give for the substrate that all models are built on.
"""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concatenate, no_grad, stack, where


def numerical_gradient(function, array, epsilon=1e-6):
    """Central-difference gradient of ``function`` (returning a scalar)."""
    gradient = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    gradient_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function(array)
        flat[index] = original - epsilon
        minus = function(array)
        flat[index] = original
        gradient_flat[index] = (plus - minus) / (2 * epsilon)
    return gradient


def check_gradient(build_loss, shape, seed=0, tolerance=1e-5):
    """Compares autodiff gradients to numerical gradients.

    Args:
        build_loss: Callable taking a Tensor and returning a scalar Tensor.
        shape: Shape of the random input array.
        seed: RNG seed for the input.
        tolerance: Maximum allowed absolute difference.
    """
    rng = np.random.default_rng(seed)
    array = rng.normal(0.0, 1.0, size=shape)
    tensor = Tensor(array.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad

    numeric = numerical_gradient(lambda a: float(build_loss(Tensor(a)).data), array.copy())
    np.testing.assert_allclose(analytic, numeric, atol=tolerance, rtol=1e-4)


class TestBasicProperties:
    def test_construction_and_shape(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4

    def test_item_and_numpy(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)
        assert isinstance(Tensor([1.0]).numpy(), np.ndarray)

    def test_detach_stops_gradients(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad

    def test_as_tensor_passthrough(self):
        tensor = Tensor([1.0])
        assert as_tensor(tensor) is tensor
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_no_grad_context(self):
        with no_grad():
            tensor = Tensor([1.0], requires_grad=True)
            result = tensor * 2.0
        assert not tensor.requires_grad
        assert not result.requires_grad

    def test_gradient_accumulates_across_uses(self):
        tensor = Tensor([2.0], requires_grad=True)
        loss = (tensor * 3.0 + tensor * 4.0).sum()
        loss.backward()
        assert tensor.grad[0] == pytest.approx(7.0)


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 2.0).sum(), (3, 4))

    def test_add_broadcasting(self):
        other = Tensor(np.ones((1, 4)))
        check_gradient(lambda t: (t + other).sum(), (3, 4))

    def test_sub_and_neg(self):
        check_gradient(lambda t: (5.0 - t - t).sum(), (2, 3))

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum(), (4,))

    def test_div(self):
        check_gradient(lambda t: (t / 3.0 + 2.0 / (t + 10.0)).sum(), (5,))

    def test_pow(self):
        check_gradient(lambda t: ((t + 5.0) ** 3).sum(), (3,))

    def test_matmul(self):
        weight = Tensor(np.random.default_rng(1).normal(size=(4, 2)))
        check_gradient(lambda t: (t @ weight).sum(), (3, 4))

    def test_matmul_gradient_wrt_weight(self):
        inputs = np.random.default_rng(2).normal(size=(3, 4))
        check_gradient(lambda w: (Tensor(inputs) @ w).sum(), (4, 2))


class TestShapeGradients:
    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * np.arange(6.0)).sum(), (2, 3))

    def test_transpose(self):
        weights = np.arange(6.0).reshape(3, 2)
        check_gradient(lambda t: (t.T * weights).sum(), (2, 3))

    def test_getitem_slice(self):
        check_gradient(lambda t: (t[:, 1:3] ** 2).sum(), (3, 4))

    def test_gather_rows(self):
        indices = np.array([0, 2, 2, 1])
        check_gradient(lambda t: (t.gather_rows(indices) ** 2).sum(), (3, 4))

    def test_concatenate(self):
        other = Tensor(np.ones((2, 2)))
        check_gradient(lambda t: concatenate([t, other], axis=1).sum(), (2, 3))

    def test_stack(self):
        check_gradient(lambda t: (stack([t * 2.0, t * 3.0], axis=0)).sum(), (2, 2))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (3, 4))

    def test_max(self):
        # Use distinct values so the argmax is stable under the perturbation.
        rng = np.random.default_rng(3)
        array = rng.permutation(12).astype(np.float64).reshape(3, 4)
        tensor = Tensor(array, requires_grad=True)
        tensor.max(axis=1).sum().backward()
        expected = np.zeros_like(array)
        expected[np.arange(3), array.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(tensor.grad, expected)


class TestNonlinearityGradients:
    def test_relu(self):
        check_gradient(lambda t: (t.relu() * 3.0).sum(), (10,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (6,))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (6,))

    def test_exp_log(self):
        check_gradient(lambda t: ((t.exp() + 1.0).log()).sum(), (5,))

    def test_sqrt(self):
        check_gradient(lambda t: ((t * t + 1.0).sqrt()).sum(), (5,))

    def test_abs(self):
        check_gradient(lambda t: (t.abs() * 2.0).sum(), (7,), seed=5)

    def test_softplus(self):
        check_gradient(lambda t: t.softplus().sum(), (6,))

    def test_clip(self):
        rng = np.random.default_rng(0)
        array = rng.normal(0, 2, size=(8,))
        tensor = Tensor(array, requires_grad=True)
        tensor.clip(-1.0, 1.0).sum().backward()
        expected = ((array >= -1.0) & (array <= 1.0)).astype(float)
        np.testing.assert_allclose(tensor.grad, expected)


class TestSegmentOperations:
    def test_segment_sum_values(self):
        tensor = Tensor(np.arange(8.0).reshape(4, 2))
        result = tensor.segment_sum(np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(result.data, [[2.0, 4.0], [10.0, 12.0]])

    def test_segment_sum_gradient(self):
        segment_ids = np.array([0, 1, 0, 2, 1])
        weights = np.arange(6.0).reshape(3, 2)
        check_gradient(
            lambda t: (t.segment_sum(segment_ids, 3) * weights).sum(), (5, 2)
        )

    def test_segment_mean_values(self):
        tensor = Tensor(np.array([[2.0], [4.0], [6.0]]))
        result = tensor.segment_mean(np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(result.data, [[3.0], [6.0], [0.0]])

    def test_segment_mean_gradient(self):
        segment_ids = np.array([0, 0, 1, 1, 1])
        check_gradient(
            lambda t: (t.segment_mean(segment_ids, 2) ** 2).sum(), (5, 3)
        )

    def test_empty_segment_produces_zero(self):
        tensor = Tensor(np.ones((2, 2)))
        result = tensor.segment_sum(np.array([0, 0]), 3)
        np.testing.assert_allclose(result.data[1:], 0.0)


class TestWhere:
    def test_where_values_and_gradient(self):
        condition = np.array([True, False, True])
        left = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        right = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        where(condition, left, right).sum().backward()
        np.testing.assert_allclose(left.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(right.grad, [0.0, 1.0, 0.0])


class TestBackwardGraph:
    def test_deep_chain(self):
        tensor = Tensor(np.array([1.0]), requires_grad=True)
        value = tensor
        for _ in range(50):
            value = value * 1.01 + 0.001
        value.sum().backward()
        assert tensor.grad is not None
        assert np.isfinite(tensor.grad).all()

    def test_diamond_graph(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        left = tensor * 3.0
        right = tensor * 4.0
        (left * right).sum().backward()
        # d/dx (3x * 4x) = 24x = 48
        assert tensor.grad[0] == pytest.approx(48.0)
