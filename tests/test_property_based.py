"""Property-based tests (hypothesis) of core data structures and invariants.

These cover the substrate pieces whose correctness everything else depends
on: the autodiff engine, the parser/renderer round trip, the graph encoding
invariants, the throughput oracle's bounds, and the metric definitions.
"""

from __future__ import annotations

import functools
import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synthetic import BlockGenerator
from repro.graph.builder import build_block_graph
from repro.models import create_model
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.testing.equivalence import relative_errors
from repro.graph.graph import pack_graphs
from repro.graph.types import EdgeType, NodeType
from repro.graph.vocabulary import build_default_vocabulary
from repro.isa.basic_block import BasicBlock
from repro.isa.operands import MemoryReference, Operand
from repro.isa.instructions import Instruction
from repro.isa.parser import parse_block_text
from repro.nn.losses import mean_absolute_percentage_error, relative_mean_squared_error
from repro.nn.tensor import Tensor
from repro.training.metrics import mape, pearson_correlation, spearman_correlation
from repro.uarch.ports import HASWELL, IVY_BRIDGE, SKYLAKE
from repro.uarch.scheduler import ThroughputOracle

VOCABULARY = build_default_vocabulary()

# --------------------------------------------------------------------- #
# Strategies.
# --------------------------------------------------------------------- #
GPR64 = st.sampled_from(
    ["RAX", "RBX", "RCX", "RDX", "RSI", "RDI", "R8", "R9", "R10", "R11", "R12"]
)
GPR32 = st.sampled_from(["EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "R8D", "R9D"])
XMM = st.sampled_from([f"XMM{i}" for i in range(16)])


@st.composite
def memory_operands(draw):
    base = draw(st.one_of(st.none(), GPR64))
    index = draw(st.one_of(st.none(), GPR64))
    if base is None and index is None:
        base = "RAX"
    scale = draw(st.sampled_from([1, 2, 4, 8]))
    displacement = draw(st.integers(min_value=-4096, max_value=4096))
    width = draw(st.sampled_from([8, 16, 32, 64]))
    return Operand.from_memory(
        MemoryReference(base=base, index=index, scale=scale,
                        displacement=displacement, width_bits=width)
    )


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["alu_rr", "alu_ri", "alu_rm", "mov_mr", "fp", "unary", "lea"]))
    if kind == "alu_rr":
        mnemonic = draw(st.sampled_from(["ADD", "SUB", "AND", "OR", "XOR", "CMP", "TEST", "IMUL"]))
        operands = [Operand.from_register(draw(GPR64)), Operand.from_register(draw(GPR64))]
    elif kind == "alu_ri":
        mnemonic = draw(st.sampled_from(["ADD", "SUB", "AND", "CMP", "SHL", "SHR"]))
        operands = [Operand.from_register(draw(GPR32)),
                    Operand.from_immediate(draw(st.integers(0, 1 << 16)))]
    elif kind == "alu_rm":
        mnemonic = draw(st.sampled_from(["ADD", "SUB", "MOV", "MOVZX"]))
        operands = [Operand.from_register(draw(GPR64)), draw(memory_operands())]
    elif kind == "mov_mr":
        mnemonic = "MOV"
        operands = [draw(memory_operands()), Operand.from_register(draw(GPR64))]
    elif kind == "fp":
        mnemonic = draw(st.sampled_from(["ADDSD", "MULSD", "SUBSS", "DIVSD", "MOVSD"]))
        operands = [Operand.from_register(draw(XMM)), Operand.from_register(draw(XMM))]
    elif kind == "unary":
        mnemonic = draw(st.sampled_from(["INC", "DEC", "NEG", "NOT", "CDQ"]))
        operands = [] if mnemonic == "CDQ" else [Operand.from_register(draw(GPR64))]
    else:
        mnemonic = "LEA"
        operands = [Operand.from_register(draw(GPR64)), draw(memory_operands())]
    return Instruction.create(mnemonic, operands)


@st.composite
def basic_blocks(draw, max_size=12):
    instruction_list = draw(st.lists(instructions(), min_size=1, max_size=max_size))
    return BasicBlock(instruction_list)


# --------------------------------------------------------------------- #
# Parser / renderer round trip.
# --------------------------------------------------------------------- #
class TestParserProperties:
    @given(basic_blocks())
    @settings(max_examples=60, deadline=None)
    def test_render_parse_round_trip(self, block):
        reparsed = parse_block_text(block.render())
        assert len(reparsed) == len(block)
        for original, parsed in zip(block.instructions, reparsed):
            assert parsed.mnemonic == original.mnemonic
            assert len(parsed.operands) == len(original.operands)
            for left, right in zip(original.operands, parsed.operands):
                assert left.kind == right.kind
                if left.is_register:
                    assert left.register == right.register
                if left.is_memory:
                    assert (left.memory.base or "") == (right.memory.base or "")
                    assert left.memory.displacement == right.memory.displacement


# --------------------------------------------------------------------- #
# Graph encoding invariants.
# --------------------------------------------------------------------- #
class TestGraphProperties:
    @given(basic_blocks())
    @settings(max_examples=60, deadline=None)
    def test_graph_structural_invariants(self, block):
        graph = build_block_graph(block)
        # One mnemonic node per instruction, in order.
        assert graph.num_instructions == len(block)
        for instruction, node_index in zip(block.instructions, graph.instruction_node_indices):
            assert graph.nodes[node_index].token == instruction.mnemonic
            assert graph.nodes[node_index].node_type is NodeType.MNEMONIC
        # Edges reference valid nodes.
        for edge in graph.edges:
            assert 0 <= edge.sender < graph.num_nodes
            assert 0 <= edge.receiver < graph.num_nodes
        # Value nodes have at most one producer (incoming OUTPUT_OPERAND edge).
        producer_count = {}
        for edge in graph.edges:
            if edge.edge_type is EdgeType.OUTPUT_OPERAND:
                producer_count[edge.receiver] = producer_count.get(edge.receiver, 0) + 1
        assert all(count <= 1 for count in producer_count.values())
        # Structural edges form a simple chain.
        structural = [e for e in graph.edges if e.edge_type is EdgeType.STRUCTURAL_DEPENDENCY]
        assert len(structural) == max(len(block) - 1, 0)

    @given(st.lists(basic_blocks(max_size=6), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_packing_preserves_totals(self, blocks):
        graphs = [build_block_graph(block) for block in blocks]
        packed = pack_graphs(graphs, VOCABULARY)
        assert packed.num_nodes == sum(graph.num_nodes for graph in graphs)
        assert packed.num_edges == sum(graph.num_edges for graph in graphs)
        assert packed.num_instructions == sum(len(block) for block in blocks)
        packed.validate()
        # Global features are valid probability-ish vectors.
        assert np.all(packed.globals_features >= 0)
        assert np.all(packed.globals_features <= 1.0 + 1e-9)


# --------------------------------------------------------------------- #
# Throughput oracle invariants.
# --------------------------------------------------------------------- #
class TestOracleProperties:
    @given(basic_blocks())
    @settings(max_examples=50, deadline=None)
    def test_throughput_positive_and_bounded(self, block):
        for uarch in (IVY_BRIDGE, HASWELL, SKYLAKE):
            breakdown = ThroughputOracle(uarch).breakdown(block)
            assert breakdown.cycles_per_iteration > 0
            assert breakdown.cycles_per_iteration >= breakdown.port_pressure_bound
            assert breakdown.cycles_per_iteration >= breakdown.frontend_bound
            assert breakdown.cycles_per_iteration >= breakdown.latency_bound
            # A block can't be slower than executing every µop serially with
            # its worst-case latency plus serialisation penalties.
            worst_case = (
                sum(uarch.cost_of(i).latency + uarch.load_latency + uarch.store_latency + 1.0
                    for i in block.instructions)
                + sum(uarch.prefix_penalty(i) for i in block.instructions)
                + 1.0
            )
            assert breakdown.cycles_per_iteration <= worst_case

    @given(basic_blocks(max_size=6), instructions())
    @settings(max_examples=40, deadline=None)
    def test_adding_an_instruction_never_relaxes_resource_bounds(self, block, extra):
        """Port pressure and front-end bounds are monotone in the block size.

        (The full throughput estimate is intentionally *not* monotone: adding
        an instruction can break a loop-carried dependency chain — the
        classic xor-zeroing idiom — which genuinely speeds real machines up.)
        """
        oracle = ThroughputOracle(HASWELL)
        extended = BasicBlock(tuple(block.instructions) + (extra,))
        before = oracle.breakdown(block)
        after = oracle.breakdown(extended)
        assert after.port_pressure_bound >= before.port_pressure_bound - 1e-9
        assert after.frontend_bound >= before.frontend_bound - 1e-9
        assert after.num_micro_ops >= before.num_micro_ops


# --------------------------------------------------------------------- #
# Loss / metric properties.
# --------------------------------------------------------------------- #
class TestMetricProperties:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=40),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_mape_scale_invariance(self, actual_values, scale):
        actual = np.array(actual_values)
        predicted = actual * 1.07
        assert mape(predicted * scale, actual * scale) == pytest.approx(
            mape(predicted, actual), rel=1e-6
        )

    @given(st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=3, max_size=40, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_perfect_predictions_have_perfect_metrics(self, actual_values):
        actual = np.array(actual_values)
        assert mape(actual, actual) == pytest.approx(0.0)
        assert spearman_correlation(actual, actual) == pytest.approx(1.0)
        assert pearson_correlation(actual, actual) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e3), min_size=2, max_size=30),
        st.lists(st.floats(min_value=1.0, max_value=1e3), min_size=2, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_losses_nonnegative_and_zero_iff_equal(self, predicted_values, actual_values):
        size = min(len(predicted_values), len(actual_values))
        predicted = Tensor(np.array(predicted_values[:size]))
        actual = Tensor(np.array(actual_values[:size]))
        assert mean_absolute_percentage_error(predicted, actual).item() >= 0.0
        assert relative_mean_squared_error(predicted, actual).item() >= 0.0
        assert mean_absolute_percentage_error(actual, actual).item() == pytest.approx(0.0, abs=1e-6)


# --------------------------------------------------------------------- #
# Autodiff properties.
# --------------------------------------------------------------------- #
class TestAutodiffProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matmul_gradient_matches_numerical(self, rows, inner, seed):
        rng = np.random.default_rng(seed)
        left = rng.normal(size=(rows, inner))
        right = rng.normal(size=(inner, 3))
        tensor = Tensor(left.copy(), requires_grad=True)
        (tensor @ Tensor(right)).sum().backward()
        expected = np.ones((rows, 3)) @ right.T
        np.testing.assert_allclose(tensor.grad, expected, atol=1e-8)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_segment_sum_conserves_mass(self, num_rows, num_segments):
        rng = np.random.default_rng(num_rows * 31 + num_segments)
        data = rng.normal(size=(num_rows, 3))
        segments = rng.integers(0, num_segments, size=num_rows)
        result = Tensor(data).segment_sum(segments, num_segments)
        np.testing.assert_allclose(result.data.sum(axis=0), data.sum(axis=0), atol=1e-9)

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_layernorm_output_statistics(self, size):
        from repro.nn.layers import LayerNorm

        layer = LayerNorm(size)
        rng = np.random.default_rng(size)
        output = layer(Tensor(rng.normal(5.0, 3.0, size=(4, size)))).data
        np.testing.assert_allclose(output.mean(axis=-1), 0.0, atol=1e-6)


# --------------------------------------------------------------------- #
# Mixed-precision inference properties.
# --------------------------------------------------------------------- #
@functools.lru_cache(maxsize=None)
def _dtype_model_pair(name: str):
    """One (float64, float32) pair per family, shared across examples.

    Same seed -> bit-identical master weights; only inference math differs.
    """
    return (
        create_model(name, small=True, seed=321, inference_dtype="float64"),
        create_model(name, small=True, seed=321, inference_dtype="float32"),
    )


class TestDtypeEquivalenceProperties:
    #: Element-wise relative tolerance of float32 vs float64 predictions on
    #: arbitrary random blocks.  Looser than the 1e-3 budget the golden
    #: corpus (tests/equivalence) enforces on its fixed blocks: with
    #: *untrained* weights over the full random-block space, GRANITE's
    #: per-instruction contributions can nearly cancel, amplifying float32
    #: rounding past 1e-3 on rare blocks (hypothesis found 1.5e-3 at seed
    #: 58522) without indicating a real precision regression.
    REL_TOL = 5e-3

    @given(
        st.sampled_from(["granite", "ithemal+"]),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=12, deadline=None)
    def test_float32_and_float64_predictions_agree(self, name, seed, count):
        blocks = BlockGenerator(seed=seed).generate_blocks(count)
        model64, model32 = _dtype_model_pair(name)
        predictions64 = model64.predict(blocks)
        predictions32 = model32.predict(blocks)
        for task in model64.tasks:
            errors = relative_errors(predictions64[task], predictions32[task])
            assert errors.max() <= self.REL_TOL, (
                f"{name}/{task} float32 deviates by {errors.max():.3e} "
                f"on blocks from seed {seed}"
            )

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_dtype_round_trips_through_checkpoints(self, seed):
        """Checkpoint save/load never narrows or silently upcasts.

        Whatever weights a float32-serving model holds, the checkpoint
        stores float64 masters, a reload restores them as float64, and the
        reloaded float32 predictions are bit-identical to the donor's
        (the cast caches are derived state, refreshed on load).
        """
        rng = np.random.default_rng(seed)
        donor = create_model("granite", small=True, seed=9, inference_dtype="float32")
        # Random weights so every example round-trips a different model.
        donor.load_state_dict(
            {
                name: value + rng.normal(scale=0.05, size=value.shape)
                for name, value in donor.state_dict().items()
            }
        )
        blocks = BlockGenerator(seed=seed).generate_blocks(3)
        expected = donor.predict(blocks)

        restored = create_model("granite", small=True, seed=10, inference_dtype="float32")
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "model.npz")
            save_checkpoint(donor, path)
            load_checkpoint(restored, path)
        for name, parameter in restored.named_parameters():
            assert parameter.data.dtype == np.float64, f"{name} was narrowed"
            assert parameter.data_as(np.float32).dtype == np.float32
        actual = restored.predict(blocks)
        for task in donor.tasks:
            np.testing.assert_array_equal(actual[task], expected[task])
