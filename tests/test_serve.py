"""Tests of the batched prediction service (repro.serve)."""

import numpy as np
import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.models import create_model
from repro.nn.serialization import save_checkpoint
from repro.serve import (
    PredictionRequest,
    PredictionService,
    ServiceConfig,
    coalesce_requests,
)
from repro.testing.equivalence import assert_allclose_for_dtype


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(GeneratorConfig(seed=9)).generate_blocks(24)


class TestCoalescing:
    def test_requests_merge_into_bounded_batches(self, blocks):
        requests = [
            PredictionRequest.of(blocks[:10]),
            PredictionRequest.of(blocks[10:12]),
            PredictionRequest.of(blocks[12:]),
        ]
        batches = coalesce_requests(requests, max_batch_size=8)
        assert all(batch.num_blocks <= 8 for batch in batches)
        assert sum(batch.num_blocks for batch in batches) == 24
        # Origins cover every (request, position) pair exactly once.
        origins = [origin for batch in batches for origin in batch.origins]
        assert sorted(origins) == [
            (index, position)
            for index, request in enumerate(requests)
            for position in range(request.num_blocks)
        ]

    def test_empty_requests_contribute_nothing(self):
        batches = coalesce_requests([PredictionRequest.of([])], max_batch_size=4)
        assert batches == []

    def test_invalid_batch_size(self, blocks):
        with pytest.raises(ValueError):
            coalesce_requests([PredictionRequest.of(blocks[:2])], max_batch_size=0)

    def test_request_accepts_text_and_blocks(self, blocks):
        request = PredictionRequest.of([blocks[0], blocks[1].render()])
        assert request.block_texts[0] == blocks[0].render()
        assert request.block_texts[1] == blocks[1].render()


class TestInProcessService:
    def test_heterogeneous_requests_reassembled(self, blocks):
        service = PredictionService(
            ServiceConfig(model_name="granite", max_batch_size=6)
        ).warm_start()
        requests = [
            PredictionRequest.of(blocks[:7], request_id="big"),
            PredictionRequest.of([], request_id="empty"),
            PredictionRequest.of(blocks[7:9], request_id="small"),
        ]
        responses = service.submit(requests)
        assert [response.request_id for response in responses] == [
            "big",
            "empty",
            "small",
        ]
        direct = service.model.predict(blocks[:9])
        for task in service.model.tasks:
            np.testing.assert_allclose(
                responses[0].predictions[task], direct[task][:7], rtol=1e-9
            )
            assert responses[1].predictions[task].shape == (0,)
            np.testing.assert_allclose(
                responses[2].predictions[task], direct[task][7:9], rtol=1e-9
            )
        assert service.stats.requests == 3
        assert service.stats.blocks == 9
        assert service.stats.batches == 2  # ceil(9 / 6)

    def test_empty_submission_with_task_filter(self, blocks):
        """A zero-block request naming valid tasks must not be rejected."""
        service = PredictionService(ServiceConfig(model_name="granite"))
        task = service.model.tasks[0]
        response = service.submit(
            [PredictionRequest.of([], request_id="empty", tasks=(task,))]
        )[0]
        assert set(response.predictions) == {task}
        assert response.predictions[task].shape == (0,)
        # Same through a worker-configured service: the parent process holds
        # no model, and an all-empty submission must not spawn the pool.
        sharded = PredictionService(ServiceConfig(model_name="granite", num_workers=2))
        response = sharded.submit(
            [PredictionRequest.of([], tasks=("skylake",))]
        )[0]
        assert set(response.predictions) == {"skylake"}
        assert sharded._pool is None

    def test_task_subset_and_unknown_task(self, blocks):
        service = PredictionService(ServiceConfig(model_name="granite"))
        task = service.model.tasks[0]
        response = service.submit(
            [PredictionRequest.of(blocks[:2], tasks=(task,))]
        )[0]
        assert set(response.predictions) == {task}
        with pytest.raises(KeyError):
            service.submit(
                [PredictionRequest.of(blocks[:2], tasks=("not-a-task",))]
            )

    def test_serves_prebuilt_model(self, blocks):
        model = create_model("ithemal+", small=True, seed=7)
        service = PredictionService(ServiceConfig(model_name="ithemal+"), model=model)
        predictions = service.predict_blocks(blocks[:5])
        expected = model.predict(blocks[:5])
        for task in model.tasks:
            np.testing.assert_allclose(predictions[task], expected[task], rtol=1e-12)

    def test_prebuilt_model_rejected_with_workers(self):
        model = create_model("granite", small=True, seed=0)
        with pytest.raises(ValueError):
            PredictionService(ServiceConfig(num_workers=1), model=model)

    def test_bad_worker_config_fails_fast(self, tmp_path):
        """A config that would crash workers must raise, not livelock."""
        missing = str(tmp_path / "nope.npz")
        service = PredictionService(
            ServiceConfig(num_workers=1, checkpoint_path=missing)
        )
        with pytest.raises(FileNotFoundError):
            service.warm_start()
        with pytest.raises(ValueError):
            PredictionService(
                ServiceConfig(model_name="not-a-model", num_workers=1)
            ).warm_start()

    def test_warm_start_checkpoint(self, blocks, tmp_path):
        """The service restores trained weights at warm start."""
        trained = create_model("granite", small=True, seed=2)
        for parameter in trained.parameters():
            parameter.data += 0.01  # make the weights differ from seed init
        path = str(tmp_path / "weights.npz")
        save_checkpoint(trained, path)

        service = PredictionService(
            ServiceConfig(model_name="granite", seed=2, checkpoint_path=path)
        ).warm_start()
        served = service.predict_blocks(blocks[:4])
        expected = trained.predict(blocks[:4])
        for task in trained.tasks:
            np.testing.assert_allclose(served[task], expected[task], rtol=1e-12)


class TestDtypeServing:
    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="inference_dtype"):
            ServiceConfig(inference_dtype="float16")

    def test_in_process_service_uses_config_dtype(self, blocks):
        float32_service = PredictionService(
            ServiceConfig(model_name="granite", inference_dtype="float32")
        )
        assert float32_service.inference_dtype == "float32"
        assert float32_service.model.inference_dtype == "float32"
        served = float32_service.predict_blocks(blocks[:6])
        reference = PredictionService(
            ServiceConfig(model_name="granite", inference_dtype="float64")
        ).predict_blocks(blocks[:6])
        # Equivalent within tolerance, but genuinely computed in another
        # precision (bit-identical everywhere would mean float64 ran).
        different = False
        for task, expected in reference.items():
            np.testing.assert_allclose(served[task], expected, rtol=1e-3, atol=1e-2)
            different = different or not np.array_equal(served[task], expected)
        assert different

    def test_prebuilt_model_keeps_its_own_dtype(self):
        model = create_model("granite", small=True, seed=0, inference_dtype="float32")
        service = PredictionService(
            ServiceConfig(model_name="granite", inference_dtype="float64"), model=model
        )
        assert service.inference_dtype == "float32"


@pytest.mark.slow
class TestShardedService:
    def test_worker_pool_matches_in_process(self, blocks):
        config = ServiceConfig(model_name="granite", max_batch_size=5, num_workers=2)
        in_process = PredictionService(
            ServiceConfig(model_name="granite", max_batch_size=5)
        )
        expected = in_process.predict_blocks(blocks)
        with PredictionService(config) as sharded:
            served = sharded.predict_blocks(blocks)
        for task in in_process.model.tasks:
            assert_allclose_for_dtype(
                served[task], expected[task], in_process.inference_dtype
            )

    def test_float32_propagates_to_every_worker(self, blocks):
        """The whole sharded pool serves the configured precision."""
        config = ServiceConfig(
            model_name="granite",
            max_batch_size=5,
            num_workers=2,
            inference_dtype="float32",
        )
        in_process = PredictionService(
            ServiceConfig(model_name="granite", max_batch_size=5, inference_dtype="float32")
        )
        expected = in_process.predict_blocks(blocks)
        with PredictionService(config) as sharded:
            served = sharded.predict_blocks(blocks)
            worker_stats = sharded._pool.worker_stats()
        assert [stats["inference_dtype"] for stats in worker_stats] == ["float32"] * 2
        for task in in_process.model.tasks:
            # Same float32 math in every replica; only BLAS-kernel rounding
            # across the different batch shapes may differ.
            assert_allclose_for_dtype(served[task], expected[task], "float32")

    def test_close_is_idempotent(self):
        service = PredictionService(ServiceConfig(num_workers=1)).warm_start()
        service.close()
        service.close()
