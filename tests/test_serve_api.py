"""Tests of the unified serve API: layered configs, reason-coded errors,
typed stats, import-path shims, tenancy and the model registry."""

import dataclasses

import pytest

from repro.serve import (
    ANONYMOUS,
    AsyncOptions,
    AsyncPredictionService,
    AsyncServiceConfig,
    AuthenticationError,
    AuthorizationError,
    CacheStats,
    InvalidRequestError,
    ModelRegistry,
    ModelVariant,
    PredictionRequest,
    PredictionService,
    QueueFullError,
    ReasonCode,
    RequestExpiredError,
    RequestQueue,
    ServeError,
    ServiceClosedError,
    ServiceConfig,
    ServiceSnapshot,
    Tenant,
    TenantDirectory,
    UnknownModelError,
)


class TestLayeredConfig:
    def test_service_config_carries_async_options(self):
        config = ServiceConfig(
            max_batch_size=16,
            async_options=AsyncOptions(max_latency_ms=5.0, backpressure="reject"),
        )
        assert config.async_options.max_latency_ms == 5.0
        assert config.async_options.backpressure == "reject"

    def test_async_options_has_no_batch_size_knob(self):
        # The collapsed duplication: max_batch_size lives on ServiceConfig
        # only, so the sync and async layers cannot disagree about it.
        names = {spec.name for spec in dataclasses.fields(AsyncOptions)}
        assert "max_batch_size" not in names

    def test_async_options_validation(self):
        with pytest.raises(ValueError):
            AsyncOptions(max_latency_ms=-1.0)
        with pytest.raises(ValueError):
            AsyncOptions(flush_policy="nope")
        with pytest.raises(ValueError):
            AsyncOptions(max_queue_blocks=0)
        with pytest.raises(ValueError):
            AsyncOptions(backpressure="drop")
        with pytest.raises(ValueError):
            AsyncOptions(flush_policy="adaptive", min_latency_ms=20.0,
                         max_latency_ms=10.0)

    def test_deprecated_spelling_converts(self):
        old = AsyncServiceConfig(
            max_batch_size=8,
            max_latency_ms=7.5,
            flush_policy="static",
            max_queue_blocks=64,
            backpressure="reject",
        )
        options = old.options
        assert options == AsyncOptions(
            max_latency_ms=7.5,
            flush_policy="static",
            max_queue_blocks=64,
            backpressure="reject",
        )
        assert AsyncServiceConfig.from_options(options, max_batch_size=8) == old

    def test_deprecated_spelling_still_validates(self):
        with pytest.raises(ValueError):
            AsyncServiceConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            AsyncServiceConfig(flush_policy="nope")

    def test_old_and_new_spellings_build_equivalent_services(self):
        # Old: async knobs (batch size included) on AsyncServiceConfig,
        # wrapped around an externally configured service.
        old_front = AsyncPredictionService(
            AsyncServiceConfig(
                max_batch_size=8, max_latency_ms=7.5, max_queue_blocks=64,
                backpressure="reject",
            ),
            service=PredictionService(ServiceConfig(max_batch_size=8)),
        )
        # New: one ServiceConfig carries everything; the front end infers.
        new_front = AsyncPredictionService(
            service_config=ServiceConfig(
                max_batch_size=8,
                async_options=AsyncOptions(
                    max_latency_ms=7.5, max_queue_blocks=64,
                    backpressure="reject",
                ),
            )
        )
        assert old_front.options == new_front.options
        assert old_front.config == new_front.config
        assert old_front.queue.max_blocks == new_front.queue.max_blocks == 64
        assert old_front.queue.policy == new_front.queue.policy == "reject"

    def test_old_spelling_batch_size_still_drives_flushes(self, sample_blocks):
        config = AsyncServiceConfig(
            max_batch_size=4, max_latency_ms=60_000.0, flush_policy="static"
        )
        with AsyncPredictionService(config) as front_end:
            future = front_end.submit(PredictionRequest.of(sample_blocks[:4]))
            response = future.result(timeout=120.0)
        assert response.num_blocks == 4
        snapshot = front_end.snapshot()
        # With a one-minute deadline, only the size trigger can have fired.
        assert snapshot.flush.size_flushes >= 1
        assert snapshot.flush.deadline_flushes == 0


class TestReasonCodes:
    @pytest.mark.parametrize(
        "error_type, legacy_base, code",
        [
            (QueueFullError, RuntimeError, ReasonCode.QUEUE_FULL),
            (RequestExpiredError, TimeoutError, ReasonCode.DEADLINE_EXPIRED),
            (ServiceClosedError, RuntimeError, ReasonCode.SERVICE_CLOSED),
            (UnknownModelError, LookupError, ReasonCode.UNKNOWN_MODEL),
            (AuthenticationError, PermissionError, ReasonCode.UNAUTHENTICATED),
            (AuthorizationError, PermissionError, ReasonCode.FORBIDDEN),
            (InvalidRequestError, ValueError, ReasonCode.INVALID_REQUEST),
        ],
    )
    def test_machine_readable_and_backward_compatible(
        self, error_type, legacy_base, code
    ):
        error = error_type("boom")
        assert error.code is code
        assert isinstance(error, ServeError)
        # Pre-taxonomy except clauses must keep catching these.
        assert isinstance(error, legacy_base)

    def test_codes_are_wire_stable_strings(self):
        assert ReasonCode.QUEUE_FULL.value == "queue_full"
        assert len({code.value for code in ReasonCode}) == len(ReasonCode)

    def test_queue_raises_coded_errors(self):
        queue = RequestQueue(max_blocks=1, policy="reject")
        queue.put(PredictionRequest.of(["mov rax, 1"]))
        with pytest.raises(QueueFullError) as info:
            queue.put(PredictionRequest.of(["mov rbx, 2"]))
        assert info.value.code is ReasonCode.QUEUE_FULL
        queue.close()
        with pytest.raises(ServiceClosedError):
            queue.put(PredictionRequest.of(["mov rcx, 3"]))


class TestImportShims:
    def test_old_import_paths_resolve_to_the_same_objects(self):
        from repro.serve import batching, queue, service
        from repro.serve import async_service as async_module

        assert batching.PredictionRequest is PredictionRequest
        assert batching.PredictionResponse is not None
        assert queue.QueueFullError is QueueFullError
        assert queue.RequestExpiredError is RequestExpiredError
        assert service.ServiceConfig is ServiceConfig
        assert service.SHARDING_MODES == ("hash", "round_robin")
        assert async_module.AsyncServiceConfig is AsyncServiceConfig


class TestTypedStats:
    def test_snapshot_flat_aliases_resolve(self, sample_blocks):
        with AsyncPredictionService(
            service_config=ServiceConfig(max_batch_size=8)
        ) as front_end:
            front_end.submit(
                PredictionRequest.of(sample_blocks[:3])
            ).result(timeout=120.0)
            snapshot = front_end.snapshot()
        assert isinstance(snapshot, ServiceSnapshot)
        # Old flat keys and new attribute paths agree.
        assert snapshot["requests"] == snapshot.queue.submitted_requests == 1
        assert snapshot["blocks"] == snapshot.queue.submitted_blocks == 3
        assert snapshot["flushes"] == snapshot.flush.flushes
        assert snapshot["flush_wait_p99_ms"] == snapshot.flush.wait_p99_ms
        assert snapshot["num_workers"] == snapshot.model.num_workers
        assert snapshot.get("not_a_key") is None
        assert "flush_policy" in snapshot
        with pytest.raises(KeyError):
            snapshot["not_a_key"]

    def test_to_dict_is_schema_complete_and_recursive(self, sample_blocks):
        with AsyncPredictionService(
            service_config=ServiceConfig(max_batch_size=8)
        ) as front_end:
            front_end.submit(
                PredictionRequest.of(sample_blocks[:2])
            ).result(timeout=120.0)
            document = front_end.snapshot().to_dict()
        assert set(document) == {
            spec.name for spec in dataclasses.fields(ServiceSnapshot)
        }
        assert isinstance(document["queue"], dict)
        assert isinstance(document["flush"], dict)
        assert document["model"]["model_name"] == "granite"
        assert document["model"]["cache"]["prediction_misses"] >= 1

    def test_service_snapshot_typed(self, sample_blocks):
        service = PredictionService(ServiceConfig(max_batch_size=8)).warm_start()
        service.submit([PredictionRequest.of(sample_blocks[:2])])
        stats = service.snapshot()
        assert stats.model_name == "granite"
        assert stats.requests == 1
        assert stats.blocks == 2
        assert stats.cache is not None
        # Flat access reaches through the nested cache section too.
        assert stats["prediction_misses"] == stats.cache.prediction_misses
        service.close()

    def test_cache_stats_tolerates_unknown_keys(self):
        stats = CacheStats.from_model_stats(
            {"prediction_hits": 3, "some_future_counter": 9}
        )
        assert stats.prediction_hits == 3
        assert stats.encode_misses == 0


class TestTenancy:
    def test_directory_requires_keys_and_unique_names(self):
        with pytest.raises(ValueError):
            TenantDirectory((Tenant("nokey"),))
        with pytest.raises(ValueError):
            TenantDirectory(
                (Tenant("dup", api_key="a"), Tenant("dup", api_key="b"))
            )

    def test_anonymous_defaults(self):
        assert TenantDirectory().authenticate(None) is ANONYMOUS
        directory = TenantDirectory((Tenant("acme", api_key="k"),))
        assert directory.allow_anonymous is False
        with pytest.raises(AuthenticationError):
            directory.authenticate(None)
        relaxed = TenantDirectory(
            (Tenant("acme", api_key="k"),), allow_anonymous=True
        )
        assert relaxed.authenticate("") is ANONYMOUS

    def test_key_lookup_and_denial(self):
        directory = TenantDirectory(
            (
                Tenant("acme", api_key="key-a", allowed_models=("m1",)),
                Tenant("blue", api_key="key-b"),
            )
        )
        assert directory.authenticate("key-a").name == "acme"
        with pytest.raises(AuthenticationError):
            directory.authenticate("key-c")
        directory.authorize(directory.authenticate("key-b"), "m2")
        with pytest.raises(AuthorizationError):
            directory.authorize(directory.authenticate("key-a"), "m2")

    def test_allow_list(self):
        tenant = Tenant("acme", api_key="k", allowed_models=("m1", "m2"))
        assert tenant.may_use("m1") and not tenant.may_use("m3")
        assert Tenant("open", api_key="k").may_use("anything")


class TestModelRegistry:
    def test_registration_validation(self):
        registry = ModelRegistry()
        registry.register(ModelVariant("model-a"))
        with pytest.raises(ValueError):
            registry.register(ModelVariant("model-a"))
        with pytest.raises(ValueError):
            ModelVariant("no spaces allowed")
        with pytest.raises(ValueError):
            ModelVariant("")
        registry.close()

    def test_unknown_model_is_coded(self):
        with ModelRegistry() as registry:
            with pytest.raises(UnknownModelError):
                registry.stats("ghost")
            with pytest.raises(UnknownModelError):
                registry.submit("ghost", PredictionRequest.of(["mov rax, 1"]))

    def test_lazy_load_unload_cycle(self):
        with ModelRegistry(
            (ModelVariant("m", ServiceConfig(tasks=("haswell",))),)
        ) as registry:
            assert not registry.is_loaded("m")
            report = registry.stats("m")
            assert report.snapshot is None and report.workers == []
            assert not registry.is_loaded("m"), "stats must not load the model"
            future = registry.submit("m", PredictionRequest.of(["mov rax, 1"]))
            assert future.result(timeout=120.0).num_blocks == 1
            assert registry.is_loaded("m")
            assert registry.stats("m").snapshot.queue.submitted_requests == 1
            assert registry.unload("m") is True
            assert registry.unload("m") is False
            assert not registry.is_loaded("m")
            # A fresh instance serves again after unload.
            future = registry.submit("m", PredictionRequest.of(["mov rbx, 2"]))
            assert future.result(timeout=120.0).num_blocks == 1

    def test_tenant_routing_and_counters(self):
        acme = Tenant("acme", api_key="k", allowed_models=("m1",))
        with ModelRegistry(
            (
                ModelVariant("m1", ServiceConfig(tasks=("haswell",))),
                ModelVariant("m2", ServiceConfig(tasks=("skylake",))),
            )
        ) as registry:
            registry.submit(
                "m1", PredictionRequest.of(["mov rax, 1"]), tenant=acme
            ).result(timeout=120.0)
            with pytest.raises(AuthorizationError):
                registry.submit(
                    "m2", PredictionRequest.of(["mov rax, 1"]), tenant=acme
                )
            info = {item.name: item for item in registry.describe()}
            assert info["m1"].requests_by_tenant == {"acme": 1}
            assert info["m2"].requests_by_tenant == {}
            assert info["m2"].loaded is False

    def test_closed_registry_refuses(self):
        registry = ModelRegistry((ModelVariant("m"),))
        registry.close()
        registry.close()  # idempotent
        with pytest.raises(ServiceClosedError):
            registry.submit("m", PredictionRequest.of(["mov rax, 1"]))
        with pytest.raises(ServiceClosedError):
            registry.describe()

    def test_variant_accessor(self):
        config = ServiceConfig(tasks=("haswell",), max_batch_size=5)
        with ModelRegistry((ModelVariant("m", config),)) as registry:
            assert registry.variant("m").config is config
            with pytest.raises(UnknownModelError):
                registry.variant("ghost")
