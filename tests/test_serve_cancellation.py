"""Cancellation and per-request-deadline semantics of the async front end.

The contract under test (the PR's goodput story):

* a future cancelled while its request is queued is discarded *eagerly* —
  its blocks free queue capacity immediately and the request never reaches
  the service (no worker time spent);
* a request whose ``deadline_ms`` budget runs out before dispatch resolves
  with :class:`~repro.serve.queue.RequestExpiredError` instead of occupying
  a micro-batch;
* every dropped entry is counted exactly once, and the drop counters
  surfaced by ``AsyncPredictionService.snapshot()`` add up.
"""

import time

import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    PredictionRequest,
    RequestExpiredError,
    RequestQueue,
    ServiceConfig,
)


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(GeneratorConfig(seed=29)).generate_blocks(24)


def _request(blocks, start, count, **kwargs):
    return PredictionRequest.of(blocks[start : start + count], **kwargs)


class TestQueueCancellation:
    def test_cancel_discards_eagerly_and_frees_capacity(self, blocks):
        queue = RequestQueue(max_blocks=4, policy="reject")
        entry = queue.put(_request(blocks, 0, 4))
        assert queue.pending_blocks == 4
        assert entry.future.cancel()
        # The entry left the queue the moment the future was cancelled.
        assert queue.pending_blocks == 0
        assert len(queue) == 0
        assert queue.cancelled == 1
        # The freed capacity is usable without any dispatcher drain.
        queue.put(_request(blocks, 4, 4))

    def test_cancel_unblocks_blocked_producer(self, blocks):
        import threading

        queue = RequestQueue(max_blocks=4, policy="block")
        doomed = queue.put(_request(blocks, 0, 4))
        admitted = threading.Event()

        def producer():
            queue.put(_request(blocks, 4, 2))
            admitted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not admitted.wait(0.05)  # queue is full, producer blocked
        doomed.future.cancel()
        assert admitted.wait(5.0)  # cancellation freed the space
        thread.join(timeout=5.0)

    def test_idle_cancellations_do_not_grow_the_heap(self, blocks):
        """Submit-then-cancel traffic on an otherwise idle queue must not
        pin cancelled payloads: the lazily-deleted heap is compacted once
        stale tuples dominate, without any drain running."""
        queue = RequestQueue(max_blocks=64)
        for _ in range(500):
            entry = queue.put(_request(blocks, 0, 1))
            assert entry.future.cancel()
        assert queue.cancelled == 500
        assert len(queue) == 0
        assert queue.pending_blocks == 0
        # The heap holds at most the live entries plus the compaction slack.
        assert len(queue._heap) <= 32

    def test_cancelled_entry_not_drained(self, blocks):
        queue = RequestQueue(max_blocks=64)
        doomed = queue.put(_request(blocks, 0, 2, request_id="doomed"))
        queue.put(_request(blocks, 2, 2, request_id="kept"))
        doomed.future.cancel()
        entries, _ = queue.take_batch(max_blocks=64, max_wait_s=0.0)
        assert [e.request.request_id for e in entries] == ["kept"]


class TestQueueExpiry:
    def test_expired_entry_resolves_with_timeout_error(self, blocks):
        queue = RequestQueue(max_blocks=64)
        doomed = queue.put(_request(blocks, 0, 2, request_id="late"), deadline_s=0.0)
        queue.put(_request(blocks, 2, 2, request_id="kept"))
        entries, _ = queue.take_batch(max_blocks=64, max_wait_s=0.0)
        assert [e.request.request_id for e in entries] == ["kept"]
        with pytest.raises(RequestExpiredError):
            doomed.future.result(timeout=1.0)
        assert queue.expired == 1
        assert queue.pending_blocks == 0

    def test_expiry_fires_during_the_flush_wait(self, blocks):
        """A deadline sooner than the flush deadline resolves on time —
        the dispatcher wait must wake for it, not sleep through it."""
        queue = RequestQueue(max_blocks=64)
        doomed = queue.put(_request(blocks, 0, 2), deadline_s=0.05)
        queue.put(_request(blocks, 2, 2, request_id="kept"))
        start = time.monotonic()
        entries, reason = queue.take_batch(max_blocks=64, max_wait_s=0.3)
        elapsed = time.monotonic() - start
        assert reason == "deadline"
        assert [e.request.request_id for e in entries] == ["kept"]
        assert elapsed >= 0.25  # the surviving entry still waited its flush
        with pytest.raises(RequestExpiredError):
            doomed.future.result(timeout=1.0)

    def test_negative_deadline_rejected(self, blocks):
        queue = RequestQueue(max_blocks=64)
        with pytest.raises(ValueError):
            queue.put(_request(blocks, 0, 2), deadline_s=-1.0)


class TestServiceCancellation:
    def test_cancelled_requests_never_reach_the_service(self, blocks):
        """Cancel half the backlog before the dispatcher starts: the
        service must only ever see (and spend compute on) the survivors."""
        service = AsyncPredictionService(
            AsyncServiceConfig(max_batch_size=8, max_latency_ms=5.0),
            service_config=ServiceConfig(model_name="granite"),
        )
        futures = [
            service.submit(_request(blocks, 2 * index, 2, request_id=f"r{index}"))
            for index in range(8)
        ]
        for index in (1, 3, 5, 7):
            assert futures[index].cancel()
        service.start()
        kept = [futures[index] for index in (0, 2, 4, 6)]
        for future in kept:
            assert future.result(timeout=30.0).num_blocks == 2
        snapshot = service.snapshot()
        service.close()
        # The sync service behind the queue only saw the surviving blocks.
        assert service.service.stats.blocks == 8
        assert snapshot["cancelled_drops"] == 4
        assert snapshot["expired_drops"] == 0
        for index in (1, 3, 5, 7):
            assert futures[index].cancelled()

    def test_expired_requests_resolve_and_are_counted(self, blocks):
        service = AsyncPredictionService(
            AsyncServiceConfig(max_batch_size=64, max_latency_ms=5.0),
            service_config=ServiceConfig(model_name="granite"),
        )
        doomed = service.submit(_request(blocks, 0, 2), deadline_ms=1.0)
        kept = service.submit(_request(blocks, 2, 2))
        time.sleep(0.05)  # the doomed request's budget runs out in-queue
        service.start()
        assert kept.result(timeout=30.0).num_blocks == 2
        with pytest.raises(RequestExpiredError):
            doomed.result(timeout=5.0)
        snapshot = service.snapshot()
        service.close()
        assert snapshot["expired_drops"] == 1
        assert snapshot["cancelled_drops"] == 0
        assert service.service.stats.blocks == 2

    def test_drop_counters_add_up(self, blocks):
        """cancelled + expired + served == submitted, each counted once."""
        service = AsyncPredictionService(
            AsyncServiceConfig(max_batch_size=64, max_latency_ms=5.0),
            service_config=ServiceConfig(model_name="granite"),
        )
        cancelled = [service.submit(_request(blocks, 0, 2)) for _ in range(3)]
        expired = [
            service.submit(_request(blocks, 2, 2), deadline_ms=0.0)
            for _ in range(2)
        ]
        served = [service.submit(_request(blocks, 4, 2)) for _ in range(4)]
        for future in cancelled:
            assert future.cancel()
        time.sleep(0.02)
        service.start()
        for future in served:
            future.result(timeout=30.0)
        for future in expired:
            with pytest.raises(RequestExpiredError):
                future.result(timeout=5.0)
        snapshot = service.snapshot()
        service.close()
        assert snapshot["cancelled_drops"] == 3
        assert snapshot["expired_drops"] == 2
        assert snapshot["requests"] == 9
        assert service.service.stats.blocks == 2 * 4

    def test_cancel_after_completion_is_a_noop(self, blocks):
        with AsyncPredictionService(
            service_config=ServiceConfig(model_name="granite")
        ) as service:
            future = service.submit(_request(blocks, 0, 2))
            future.result(timeout=30.0)
            assert not future.cancel()
            snapshot = service.snapshot()
        assert snapshot["cancelled_drops"] == 0
