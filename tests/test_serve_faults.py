"""Tests of the deterministic fault-injection plane and crash-safe checkpoints."""

import json
import os

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.serialization import (
    CheckpointCorruptError,
    checkpoint_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.faults import (
    CONTENT_KINDS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    load_fault_plan_from_env,
)

TEXTS = [f"add r{i}, r{(i + 1) % 13}\nsub r{i}, 4" for i in range(64)]


def crash_plan(seed=11, probability=0.2, **kwargs):
    return FaultPlan(
        seed=seed, specs=(FaultSpec("crash", probability=probability, **kwargs),)
    )


class TestFaultPlan:
    def test_prone_selection_is_deterministic(self):
        plan_a = crash_plan(seed=11)
        plan_b = crash_plan(seed=11)
        assert plan_a.prone_texts("crash", TEXTS) == plan_b.prone_texts("crash", TEXTS)

    def test_prone_set_depends_on_seed(self):
        sets = {crash_plan(seed=seed).prone_texts("crash", TEXTS) for seed in range(5)}
        assert len(sets) > 1

    def test_probability_scales_the_band(self):
        none = crash_plan(probability=0.0).prone_texts("crash", TEXTS)
        some = crash_plan(probability=0.3).prone_texts("crash", TEXTS)
        everything = crash_plan(probability=1.0).prone_texts("crash", TEXTS)
        assert none == ()
        assert 0 < len(some) < len(TEXTS)
        assert everything == tuple(TEXTS)

    def test_event_kinds_are_never_content_prone(self):
        plan = FaultPlan(
            specs=(FaultSpec("queue_saturation", duration_events=5),)
        )
        assert plan.prone_texts("queue_saturation", TEXTS) == ()

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            specs=(
                FaultSpec("crash", probability=0.1),
                FaultSpec("hang", probability=0.05, delay_ms=1500.0),
                FaultSpec("queue_saturation", start_after_events=3, duration_events=2),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike")

    def test_rejects_duplicate_kinds(self):
        with pytest.raises(ValueError, match="more than once"):
            FaultPlan(specs=(FaultSpec("crash"), FaultSpec("crash")))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("crash", probability=1.5)

    def test_kind_taxonomy_is_complete(self):
        assert set(CONTENT_KINDS) < set(FAULT_KINDS)


class TestEnvLoading:
    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert load_fault_plan_from_env() is None

    def test_inline_json(self, monkeypatch):
        plan = crash_plan(seed=3)
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        assert load_fault_plan_from_env() == plan

    def test_file_path(self, monkeypatch, tmp_path):
        plan = crash_plan(seed=4)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        assert load_fault_plan_from_env() == plan


class TestFaultInjector:
    def test_content_fault_fires_once_per_text(self):
        plan = crash_plan(probability=1.0)
        injector = FaultInjector(plan)
        assert injector.worker_fault([TEXTS[0]]) == ("crash", 0.0)
        assert injector.worker_fault([TEXTS[0]]) is None
        assert injector.worker_fault([TEXTS[1]]) is not None
        assert injector.counters()["crash"] == 2

    def test_incarnation_gate_protects_respawned_workers(self):
        plan = crash_plan(probability=1.0)
        respawned = FaultInjector(plan, incarnation=2)
        assert respawned.worker_fault(TEXTS[:4]) is None

    def test_hang_reports_its_delay(self):
        plan = FaultPlan(
            specs=(FaultSpec("hang", probability=1.0, delay_ms=1500.0),)
        )
        kind, delay_s = FaultInjector(plan).worker_fault([TEXTS[0]])
        assert kind == "hang"
        assert delay_s == pytest.approx(1.5)

    def test_priority_order_is_stable(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("slow_reply", probability=1.0, delay_ms=5.0),
                FaultSpec("crash", probability=1.0),
            )
        )
        kind, _ = FaultInjector(plan).worker_fault([TEXTS[0]])
        assert kind == "crash"

    def test_event_window_saturation(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "queue_saturation", start_after_events=2, duration_events=3
                ),
            )
        )
        injector = FaultInjector(plan)
        fired = [injector.on_submit() for _ in range(8)]
        assert fired == [False, False, True, True, True, False, False, False]
        assert injector.counters()["queue_saturation"] == 3

    def test_checkpoint_write_window(self):
        plan = FaultPlan(
            specs=(FaultSpec("checkpoint_write_failure", duration_events=1),)
        )
        injector = FaultInjector(plan)
        assert injector.on_checkpoint_write() is True
        assert injector.on_checkpoint_write() is False

    def test_corrupt_preserves_shape_and_dtype(self):
        payload = {"haswell": np.array([1.0, 2.0], dtype=np.float32)}
        corrupted = FaultInjector(crash_plan()).corrupt(payload)
        assert corrupted["haswell"].shape == (2,)
        assert corrupted["haswell"].dtype == np.float32
        assert np.isnan(corrupted["haswell"]).all()


class TestCrashSafeCheckpoints:
    @pytest.fixture()
    def module(self):
        return Dense(4, 3, np.random.default_rng(5))

    def test_save_is_atomic_under_injected_write_failure(self, module, tmp_path):
        path = str(tmp_path / "model.npz")
        save_checkpoint(module, path)
        before = open(path, "rb").read()

        def explode(temp_path):
            raise OSError("injected checkpoint write failure")

        with pytest.raises(OSError, match="injected"):
            save_checkpoint(module, path, fault_hook=explode)
        assert open(path, "rb").read() == before
        assert not os.path.exists(path + ".tmp")

    def test_corruption_detected_on_load(self, module, tmp_path):
        path = str(tmp_path / "model.npz")
        save_checkpoint(module, path)
        with open(path, "r+b") as handle:
            handle.seek(80)
            handle.write(b"\x00" * 32)
        with pytest.raises(CheckpointCorruptError):
            checkpoint_to_dict(path)

    def test_load_falls_back_to_last_good(self, module, tmp_path):
        path = str(tmp_path / "model.npz")
        save_checkpoint(module, path)
        save_checkpoint(module, path)  # demotes the first save to .bak
        with open(path, "r+b") as handle:
            handle.seek(80)
            handle.write(b"\x00" * 32)
        clone = Dense(4, 3, np.random.default_rng(6))
        used = load_checkpoint(clone, path)
        assert used.endswith(".bak")
        np.testing.assert_allclose(clone.weight.data, module.weight.data)

    def test_both_corrupt_raises(self, module, tmp_path):
        path = str(tmp_path / "model.npz")
        save_checkpoint(module, path)
        save_checkpoint(module, path)
        for victim in (path, path + ".bak"):
            with open(victim, "r+b") as handle:
                handle.seek(80)
                handle.write(b"\x00" * 32)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(Dense(4, 3, np.random.default_rng(7)), path)

    def test_extensionless_path_round_trips(self, module, tmp_path):
        path = str(tmp_path / "model")
        landed = save_checkpoint(module, path)
        assert landed.endswith(".npz")
        state = checkpoint_to_dict(path)
        assert "__checksum__" not in state
        assert set(state) == {"weight", "bias"}

    def test_legacy_archives_without_checksum_still_load(self, module, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path, **module.state_dict())
        clone = Dense(4, 3, np.random.default_rng(8))
        load_checkpoint(clone, path)
        np.testing.assert_allclose(clone.weight.data, module.weight.data)

    def test_plan_json_checked_into_benchmarks_is_loadable(self):
        bench = os.path.join(
            os.path.dirname(__file__), os.pardir, "benchmarks", "BENCH_chaos.json"
        )
        if not os.path.exists(bench):
            pytest.skip("chaos benchmark numbers not generated yet")
        with open(bench, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert FaultPlan.from_dict(payload["fault_plan"]) is not None
