"""Tests of the flush-deadline controllers (repro.serve.flush)."""

import time

import pytest

from repro.serve import (
    AdaptiveFlushController,
    AsyncPredictionService,
    AsyncServiceConfig,
    PredictionRequest,
    ServiceConfig,
    StaticFlushController,
    create_flush_controller,
    default_flush_policy,
)

MAX_S = 0.025  # the ceiling (25 ms)
MIN_S = 0.001  # the floor (1 ms)
BATCH = 64


def _adaptive(window_s=0.25) -> AdaptiveFlushController:
    return AdaptiveFlushController(MAX_S, MIN_S, BATCH, window_s=window_s)


class TestStaticController:
    def test_always_max_latency(self):
        controller = StaticFlushController(MAX_S)
        assert controller.deadline_s() == MAX_S
        assert controller.deadline_s(pending_blocks=10_000) == MAX_S
        controller.observe_arrival(500)  # ignored by design
        assert controller.deadline_s() == MAX_S
        assert controller.state()["deadline_ms"] == pytest.approx(MAX_S * 1e3)


class TestAdaptiveController:
    def test_idle_deadline_is_the_floor(self):
        controller = _adaptive()
        # No arrivals, nothing pending: waiting longer buys nothing.
        assert controller.deadline_s(0, now=100.0) == pytest.approx(MIN_S)

    def test_saturated_deadline_is_the_ceiling(self):
        controller = _adaptive()
        # Arrivals far above the batch-fill rate saturate the load at 1.
        controller.observe_arrival(10_000, now=100.0)
        assert controller.deadline_s(0, now=100.0) == pytest.approx(MAX_S)

    def test_deadline_scales_between_floor_and_ceiling(self):
        controller = _adaptive(window_s=1.0)
        # Half the batch-fill rate: 64 blocks / 25 ms = 2560 blocks/s, so
        # 1280 blocks over the 1 s window is load 0.5.
        controller.observe_arrival(1280, now=100.0)
        expected = MIN_S + 0.5 * (MAX_S - MIN_S)
        assert controller.deadline_s(0, now=100.0) == pytest.approx(expected)

    def test_pending_blocks_raise_the_load(self):
        controller = _adaptive()
        idle = controller.deadline_s(0, now=100.0)
        half = controller.deadline_s(BATCH // 2, now=100.0)
        full = controller.deadline_s(BATCH, now=100.0)
        assert idle < half < full == pytest.approx(MAX_S)

    def test_window_forgets_old_arrivals(self):
        controller = _adaptive(window_s=0.1)
        controller.observe_arrival(10_000, now=100.0)
        assert controller.deadline_s(0, now=100.05) == pytest.approx(MAX_S)
        # 200 ms later the burst is outside the window: idle again.
        assert controller.deadline_s(0, now=100.2) == pytest.approx(MIN_S)

    def test_state_reports_the_last_decision(self):
        controller = _adaptive()
        controller.observe_arrival(10_000, now=100.0)
        controller.deadline_s(0, now=100.0)
        state = controller.state()
        assert state["policy"] == "adaptive"
        assert state["load"] == pytest.approx(1.0)
        assert state["deadline_ms"] == pytest.approx(MAX_S * 1e3)
        assert state["min_deadline_ms"] == pytest.approx(MIN_S * 1e3)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            AdaptiveFlushController(-1.0, 0.0, BATCH)
        with pytest.raises(ValueError):
            AdaptiveFlushController(MAX_S, MAX_S * 2, BATCH)  # floor > ceiling
        with pytest.raises(ValueError):
            AdaptiveFlushController(MAX_S, MIN_S, 0)
        with pytest.raises(ValueError):
            AdaptiveFlushController(MAX_S, MIN_S, BATCH, window_s=0.0)


class TestFactoryAndConfig:
    def test_factory_builds_both_policies(self):
        assert isinstance(
            create_flush_controller("static", MAX_S, MIN_S, BATCH),
            StaticFlushController,
        )
        assert isinstance(
            create_flush_controller("adaptive", MAX_S, MIN_S, BATCH),
            AdaptiveFlushController,
        )
        with pytest.raises(ValueError):
            create_flush_controller("nagle", MAX_S, MIN_S, BATCH)

    def test_async_config_validates_policy(self):
        assert AsyncServiceConfig(flush_policy="adaptive").flush_policy == "adaptive"
        with pytest.raises(ValueError):
            AsyncServiceConfig(flush_policy="nagle")
        with pytest.raises(ValueError):
            AsyncServiceConfig(
                flush_policy="adaptive", min_latency_ms=20.0, max_latency_ms=10.0
            )
        with pytest.raises(ValueError):
            AsyncServiceConfig(min_latency_ms=-1.0)
        with pytest.raises(ValueError):
            AsyncServiceConfig(controller_window_ms=0.0)

    def test_static_policy_allows_sub_floor_deadlines(self):
        """The adaptive floor must not invalidate static configs that were
        legal before it existed (min_latency_ms is ignored by static)."""
        assert AsyncServiceConfig(max_latency_ms=0.5).max_latency_ms == 0.5
        assert AsyncServiceConfig(max_latency_ms=0.0).max_latency_ms == 0.0

    def test_peek_deadline_does_not_clobber_last_decision(self):
        """Observers (snapshot) must not overwrite the dispatcher's last
        recorded deadline decision."""
        controller = _adaptive()
        controller.observe_arrival(10_000, now=100.0)
        controller.deadline_s(0, now=100.0)  # dispatcher: saturated
        recorded = controller.state()["deadline_ms"]
        # An observer peeks much later, when the window has gone idle.
        peeked = controller.peek_deadline_s(0, now=200.0)
        assert peeked == pytest.approx(MIN_S)
        assert controller.state()["deadline_ms"] == recorded

    def test_env_default_flush_policy(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLUSH_POLICY", raising=False)
        assert default_flush_policy() == "static"
        monkeypatch.setenv("REPRO_FLUSH_POLICY", "adaptive")
        assert default_flush_policy() == "adaptive"
        assert AsyncServiceConfig().flush_policy == "adaptive"


class TestAdaptiveEndToEnd:
    def test_idle_request_answers_far_below_the_ceiling(self):
        """A lone request under the adaptive policy must not sit out the
        full ``max_latency_ms`` the static policy would charge it."""
        from repro.data.synthetic import BlockGenerator

        blocks = BlockGenerator(seed=3).generate_blocks(2)
        config = AsyncServiceConfig(
            max_batch_size=64,
            max_latency_ms=500.0,
            flush_policy="adaptive",
            min_latency_ms=1.0,
        )
        with AsyncPredictionService(
            config, service_config=ServiceConfig(model_name="granite")
        ) as service:
            service.predict_blocks(blocks)  # warm model + caches
            time.sleep(0.3)  # let the warm-up burst leave the window
            start = time.monotonic()
            future = service.submit(PredictionRequest.of(blocks))
            future.result(timeout=30.0)
            elapsed = time.monotonic() - start
            snapshot = service.snapshot()
        # Static would wait the full 500 ms deadline before flushing; the
        # adaptive controller should flush the idle queue almost at once.
        assert elapsed < 0.25
        assert snapshot["flush_policy"] == "adaptive"
        assert snapshot["flush_deadline_p50_ms"] <= 500.0

    def test_snapshot_exposes_controller_and_queue(self):
        from repro.data.synthetic import BlockGenerator

        blocks = BlockGenerator(seed=4).generate_blocks(4)
        config = AsyncServiceConfig(max_latency_ms=5.0, flush_policy="adaptive")
        with AsyncPredictionService(
            config, service_config=ServiceConfig(model_name="granite")
        ) as service:
            service.predict_blocks(blocks)
            snapshot = service.snapshot()
        assert snapshot["requests"] == 1
        assert snapshot["flushes"] >= 1
        assert snapshot["queue_depth_blocks"] == 0
        assert snapshot["cancelled_drops"] == 0
        assert snapshot["expired_drops"] == 0
        assert 0.0 <= snapshot["current_deadline_ms"] <= 5.0
        assert snapshot["controller"]["policy"] == "adaptive"
        assert len(service.stats.flush_deadlines_ms) == len(
            service.stats.queue_depths
        )
