"""Hedged-request semantics (repro.serve.async_service + flush.HedgeController).

The contract under test: a hedge is a *duplicate* of a still-pending
request; whichever attempt finishes first resolves the client future,
exactly once; the losing attempt is cancelled (freeing queue capacity
when still queued) and can never re-complete, fail, or double-complete
the client.
"""

import math
import threading
import time

import pytest

from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    HedgeController,
    PredictionRequest,
    PredictionService,
)


class TestHedgeController:
    def test_under_sampled_deadline_is_nan(self):
        controller = HedgeController(quantile=0.99, min_samples=4)
        assert math.isnan(controller.deadline_s([]))
        assert math.isnan(controller.deadline_s([0.1, 0.2, 0.3]))

    def test_deadline_is_the_quantile(self):
        controller = HedgeController(quantile=0.5, min_samples=1, min_s=0.0)
        assert controller.deadline_s([0.1, 0.2, 0.3]) == pytest.approx(0.2)

    def test_floor_and_cap(self):
        controller = HedgeController(
            quantile=1.0, min_samples=1, min_s=0.05, max_s=0.2
        )
        assert controller.deadline_s([0.001]) == 0.05  # floored
        assert controller.deadline_s([5.0]) == 0.2  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgeController(quantile=0.0)
        with pytest.raises(ValueError):
            HedgeController(min_samples=0)
        with pytest.raises(ValueError):
            HedgeController(min_s=0.2, max_s=0.1)


class _BlockingOnceService(PredictionService):
    """First submission stalls until released; later ones run normally.

    The stall happens *before* the base submit (outside any lock), so a
    hedge dispatched through a second flush slot can overtake it.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.release = threading.Event()
        self.stalled = threading.Event()
        self._stall_lock = threading.Lock()
        self._stalled_once = False

    def submit(self, requests):
        stall = False
        with self._stall_lock:
            if not self._stalled_once:
                self._stalled_once = True
                stall = True
        if stall:
            self.stalled.set()
            assert self.release.wait(timeout=30.0), "never released"
        return super().submit(requests)


def _hedging_config(**overrides):
    base = dict(
        max_batch_size=4,
        max_latency_ms=1.0,
        hedge_enabled=True,
        hedge_quantile=0.5,
        hedge_min_samples=4,
        hedge_min_ms=5.0,
        hedge_max_ms=25.0,
        hedge_poll_ms=1.0,
        max_concurrent_flushes=2,
    )
    base.update(overrides)
    return AsyncServiceConfig(**base)


class TestHedgingEndToEnd:
    def test_hedge_overtakes_straggler_and_no_double_complete(self):
        inner = _BlockingOnceService()
        with AsyncPredictionService(_hedging_config(), service=inner) as service:
            # Warm the latency reservoir past hedge_min_samples so the
            # controller has a deadline.  (First flush is the stalled one,
            # so release it for the warmup.)
            inner.release.set()
            for index in range(6):
                service.predict_blocks([f"ADD RAX, {index}"])
            inner.release.clear()
            inner._stalled_once = False
            inner.stalled.clear()

            future = service.submit(PredictionRequest.of(["MOV RBX, RCX"]))
            assert inner.stalled.wait(timeout=10.0)
            # The primary attempt is stalled inside the service; the hedge
            # must complete the client anyway.
            response = future.result(timeout=10.0)
            assert response.num_blocks == 1
            snapshot = service.snapshot()
            assert snapshot.hedge.enabled
            assert snapshot["hedges_issued"] >= 1
            assert snapshot["hedges_won"] >= 1
            # Release the straggler; its late completion must not blow up
            # (the client future is already resolved — set_result twice
            # would raise InvalidStateError inside the flush thread and
            # surface as request_errors).
            inner.release.set()
            time.sleep(0.2)
            final = service.snapshot()
            assert final.flush.request_errors == 0
        assert future.done() and not future.cancelled()

    def test_cancelling_the_client_cancels_every_attempt(self):
        inner = _BlockingOnceService()
        with AsyncPredictionService(_hedging_config(), service=inner) as service:
            inner.release.set()
            for index in range(6):
                service.predict_blocks([f"ADD RAX, {index}"])
            inner.release.clear()
            inner._stalled_once = False
            inner.stalled.clear()

            # Fill the (single remaining) flush slot with the stalled
            # request, then cancel a queued one: the queue's eager discard
            # must see the cancellation.
            stalled_future = service.submit(PredictionRequest.of(["MOV R8, R9"]))
            assert inner.stalled.wait(timeout=10.0)
            victim = service.submit(PredictionRequest.of(["MOV R10, R11"]))
            before = service.queue.cancelled
            assert victim.cancel()
            deadline = time.monotonic() + 5.0
            while service.queue.cancelled <= before and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service.queue.cancelled > before
            inner.release.set()
            stalled_future.result(timeout=10.0)

    def test_hedging_disabled_issues_nothing(self):
        config = _hedging_config(hedge_enabled=False)
        with AsyncPredictionService(config) as service:
            for index in range(8):
                service.predict_blocks([f"ADD RAX, {index}"])
            snapshot = service.snapshot()
        assert not snapshot.hedge.enabled
        assert snapshot["hedges_issued"] == 0
        assert snapshot["hedges_won"] == 0
        assert snapshot.hedge.losers_cancelled == 0

    def test_hedged_futures_resolve_exactly_once_under_load(self):
        with AsyncPredictionService(_hedging_config()) as service:
            futures = [
                service.submit(PredictionRequest.of([f"ADD RCX, {index % 16}"]))
                for index in range(64)
            ]
            results = [future.result(timeout=30.0) for future in futures]
            assert all(response.num_blocks == 1 for response in results)
            snapshot = service.snapshot()
            # Winners + losers both feed the per-request reservoir, and
            # every submitted request completed exactly once.
            assert snapshot.flush.request_errors == 0
        assert all(future.done() for future in futures)

    def test_losers_cancelled_counter_moves(self):
        inner = _BlockingOnceService()
        with AsyncPredictionService(_hedging_config(), service=inner) as service:
            inner.release.set()
            for index in range(6):
                service.predict_blocks([f"ADD RAX, {index}"])
            inner.release.clear()
            inner._stalled_once = False
            inner.stalled.clear()
            future = service.submit(PredictionRequest.of(["MOV RDX, RSI"]))
            assert inner.stalled.wait(timeout=10.0)
            future.result(timeout=10.0)
            inner.release.set()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if service.snapshot().hedge.losers_cancelled >= 1:
                    break
                time.sleep(0.02)
            # The stalled primary lost the race; it was cancelled (if still
            # pending) or completed unobserved — either way the counter
            # must reflect the hedge outcome without errors.
            snapshot = service.snapshot()
            assert snapshot["hedges_won"] >= 1
            assert snapshot.flush.request_errors == 0
