"""End-to-end tests of the HTTP front end (repro.serve.http).

One server, several named model variants (different uarch heads and
dtypes), per-tenant API keys — every test talks to a real socket.
"""

import dataclasses
import json
import socket
import threading
import time

import pytest

from repro.models.config import default_inference_dtype
from repro.serve import (
    AsyncOptions,
    FlushStats,
    HttpServerConfig,
    ModelRegistry,
    ModelStats,
    ModelVariant,
    PredictionHttpServer,
    QueueStats,
    ReasonCode,
    STATUS_BY_REASON,
    ServiceConfig,
    ServiceSnapshot,
    Tenant,
    TenantDirectory,
)

ACME_KEY = "test-key-acme"
BLUE_KEY = "test-key-blue"


def http(
    port, method, path, payload=None, api_key=None, bearer=False, timeout=120.0
):
    """One raw HTTP/1.1 exchange; returns (status, parsed-or-raw body)."""
    body = b"" if payload is None else json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if api_key is not None:
        head += (
            f"Authorization: Bearer {api_key}\r\n"
            if bearer
            else f"X-API-Key: {api_key}\r\n"
        )
    head += "Connection: close\r\n\r\n"
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(head.encode() + body)
        raw = b""
        while True:
            part = sock.recv(65536)
            if not part:
                break
            raw += part
    header_blob, _, rest = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ")[1])
    if b"transfer-encoding: chunked" in header_blob.lower():
        chunks = []
        while rest:
            size_line, _, rest = rest.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            chunks.append(rest[:size])
            rest = rest[size + 2 :]
        lines = b"".join(chunks).decode().strip().split("\n")
        return status, [json.loads(line) for line in lines]
    return status, json.loads(rest) if rest else None


@pytest.fixture(scope="module")
def server():
    """One HTTP server over three variants and two tenants."""
    registry = ModelRegistry(
        (
            ModelVariant(
                "granite-haswell",
                ServiceConfig(tasks=("haswell",), max_batch_size=4),
                description="haswell head",
            ),
            ModelVariant(
                "granite-skylake-f32",
                ServiceConfig(
                    tasks=("skylake",),
                    max_batch_size=8,
                    inference_dtype="float32",
                ),
                description="mixed-precision skylake head",
            ),
            # Saturation target: a 2-block queue behind a one-minute static
            # flush deadline, rejecting instead of blocking.
            ModelVariant(
                "tiny-queue",
                ServiceConfig(
                    tasks=("haswell",),
                    max_batch_size=4,
                    async_options=AsyncOptions(
                        max_latency_ms=60_000.0,
                        flush_policy="static",
                        max_queue_blocks=2,
                        backpressure="reject",
                    ),
                ),
            ),
        )
    )
    auth = TenantDirectory(
        (
            Tenant(
                "acme",
                api_key=ACME_KEY,
                allowed_models=("granite-haswell", "tiny-queue"),
            ),
            Tenant("blue", api_key=BLUE_KEY),
        )
    )
    with PredictionHttpServer(
        registry, HttpServerConfig(), auth=auth, own_registry=True
    ) as running:
        yield running


class TestRoutingAndAuth:
    def test_healthz_needs_no_key(self, server):
        status, body = http(server.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_missing_and_unknown_keys_are_401(self, server):
        for api_key in (None, "wrong-key"):
            status, body = http(server.port, "GET", "/v1/models", api_key=api_key)
            assert status == 401
            assert body["error"]["code"] == "unauthenticated"

    def test_listing_is_filtered_per_tenant(self, server):
        status, body = http(server.port, "GET", "/v1/models", api_key=ACME_KEY)
        assert status == 200
        assert [model["name"] for model in body["models"]] == [
            "granite-haswell",
            "tiny-queue",
        ]
        status, body = http(
            server.port, "GET", "/v1/models", api_key=BLUE_KEY, bearer=True
        )
        assert status == 200
        assert len(body["models"]) == 3

    def test_model_off_allow_list_is_403(self, server):
        status, body = http(
            server.port,
            "POST",
            "/v1/models/granite-skylake-f32/predict",
            payload={"block": "mov rax, 1"},
            api_key=ACME_KEY,
        )
        assert status == 403
        assert body["error"]["code"] == "forbidden"

    def test_unknown_model_is_404(self, server):
        status, body = http(
            server.port,
            "POST",
            "/v1/models/ghost/predict",
            payload={"block": "mov rax, 1"},
            api_key=BLUE_KEY,
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_model"

    def test_unknown_route_is_400(self, server):
        status, body = http(server.port, "GET", "/nope", api_key=BLUE_KEY)
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"blocks": []},
            {"blocks": ["  "]},
            {"blocks": [42]},
            {"block": "mov rax, 1", "blocks": ["mov rax, 1"]},
            {"blocks": ["mov rax, 1"], "priority": "urgent"},
            {"blocks": ["mov rax, 1"], "deadline_ms": -5},
            {"blocks": ["mov rax, 1"], "stream": "yes"},
        ],
    )
    def test_malformed_predict_bodies_are_400(self, server, payload):
        status, body = http(
            server.port,
            "POST",
            "/v1/models/granite-haswell/predict",
            payload=payload,
            api_key=ACME_KEY,
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_status_map_covers_every_reason_code(self):
        assert set(STATUS_BY_REASON) == set(ReasonCode)


class TestPredict:
    def test_unary_predict(self, server):
        status, body = http(
            server.port,
            "POST",
            "/v1/models/granite-haswell/predict",
            payload={
                "blocks": ["add rax, rbx\nsub rcx, 4", "mov rdx, 8"],
                "priority": "interactive",
            },
            api_key=ACME_KEY,
        )
        assert status == 200
        assert body["model"] == "granite-haswell"
        assert body["num_blocks"] == 2
        assert len(body["predictions"]["haswell"]) == 2
        assert all(value > 0 for value in body["predictions"]["haswell"])

    def test_two_variants_through_one_server(self, server):
        """Same socket, different uarch head AND different dtype."""
        blocks = ["add rax, rbx", "mov rcx, 4\nadd rcx, rdx"]
        results = {}
        for model in ("granite-haswell", "granite-skylake-f32"):
            status, body = http(
                server.port,
                "POST",
                f"/v1/models/{model}/predict",
                payload={"blocks": blocks},
                api_key=BLUE_KEY,
            )
            assert status == 200
            results[model] = body["predictions"]
        assert set(results["granite-haswell"]) == {"haswell"}
        assert set(results["granite-skylake-f32"]) == {"skylake"}
        # granite-haswell sets no explicit dtype, so it follows the
        # process-wide default (the INFERENCE_DTYPE CI matrix leg);
        # granite-skylake-f32 pins float32 regardless.
        for model, dtype in (
            ("granite-haswell", default_inference_dtype()),
            ("granite-skylake-f32", "float32"),
        ):
            status, report = http(
                server.port,
                "GET",
                f"/v1/models/{model}/stats",
                api_key=BLUE_KEY,
            )
            assert status == 200
            assert report["snapshot"]["model"]["inference_dtype"] == dtype

    def test_concurrent_multi_model_traffic(self, server):
        """Parallel clients on both variants: isolated caches and answers."""
        outcomes = {}

        def client(tag, model, block):
            outcomes[tag] = http(
                server.port,
                "POST",
                f"/v1/models/{model}/predict",
                payload={"blocks": [block] * 3},
                api_key=BLUE_KEY,
            )

        threads = [
            threading.Thread(
                target=client,
                args=(
                    index,
                    ("granite-haswell", "granite-skylake-f32")[index % 2],
                    f"add rax, {index}\nmov rbx, {index}",
                ),
            )
            for index in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 6
        for index, (status, body) in outcomes.items():
            assert status == 200
            expected = ("haswell", "skylake")[index % 2]
            assert set(body["predictions"]) == {expected}
            assert body["num_blocks"] == 3

    def test_streaming_emits_one_line_per_micro_batch(self, server):
        blocks = [f"add rax, {i}\nmov rbx, {i}" for i in range(10)]
        status, lines = http(
            server.port,
            "POST",
            "/v1/models/granite-haswell/predict",
            payload={"blocks": blocks, "stream": True},
            api_key=ACME_KEY,
        )
        assert status == 200
        # max_batch_size=4 over 10 blocks -> 3 chunks + the done line.
        assert lines[-1] == {"done": True, "chunks": 3}
        data_lines = lines[:-1]
        assert sorted(line["chunk"] for line in data_lines) == [0, 1, 2]
        assert sorted(line["offset"] for line in data_lines) == [0, 4, 8]
        assert sum(line["num_blocks"] for line in data_lines) == 10
        for line in data_lines:
            assert len(line["predictions"]["haswell"]) == line["num_blocks"]

    def test_zero_deadline_is_408(self, server):
        status, body = http(
            server.port,
            "POST",
            "/v1/models/granite-haswell/predict",
            payload={"block": "mov rax, 1", "deadline_ms": 0},
            api_key=ACME_KEY,
        )
        assert status == 408
        assert body["error"]["code"] == "deadline_expired"


class TestBackpressure:
    def test_forced_saturation_is_429(self, server):
        """Fill tiny-queue's 2-block reject queue, then get turned away."""
        results = {}

        def filler():
            results["fill"] = http(
                server.port,
                "POST",
                "/v1/models/tiny-queue/predict",
                payload={
                    "blocks": ["mov rax, 1", "mov rbx, 2"],
                    "priority": "bulk",
                },
                api_key=ACME_KEY,
            )

        thread = threading.Thread(target=filler)
        thread.start()
        # Wait until the filler's two blocks are actually queued (the
        # static one-minute deadline keeps them there).
        deadline = time.monotonic() + 30.0
        depth = 0
        while time.monotonic() < deadline:
            _, report = http(
                server.port,
                "GET",
                "/v1/models/tiny-queue/stats",
                api_key=ACME_KEY,
            )
            snapshot = report.get("snapshot")
            depth = snapshot["queue"]["depth_blocks"] if snapshot else 0
            if depth == 2:
                break
            time.sleep(0.05)
        assert depth == 2, "saturation never established"
        status, body = http(
            server.port,
            "POST",
            "/v1/models/tiny-queue/predict",
            payload={"block": "mov rcx, 3"},
            api_key=ACME_KEY,
        )
        assert status == 429
        assert body["error"]["code"] == "queue_full"
        # An interactive request still jumps in once capacity frees: the
        # filler is answered when its deadline flush fires on close/unload.
        server.registry.unload("tiny-queue")
        thread.join(timeout=120.0)
        assert not thread.is_alive()
        assert results["fill"][0] == 200, "queued work must still be answered"


class TestRegistryLifecycleOverHttp:
    def test_lazy_load_visible_in_listing(self, server):
        registry = server.registry
        registry.register(
            ModelVariant("lazy-model", ServiceConfig(tasks=("ivy_bridge",)))
        )
        _, body = http(server.port, "GET", "/v1/models", api_key=BLUE_KEY)
        listed = {model["name"]: model for model in body["models"]}
        assert listed["lazy-model"]["loaded"] is False
        status, _ = http(
            server.port,
            "POST",
            "/v1/models/lazy-model/predict",
            payload={"block": "mov rax, 1"},
            api_key=BLUE_KEY,
        )
        assert status == 200
        _, body = http(server.port, "GET", "/v1/models", api_key=BLUE_KEY)
        listed = {model["name"]: model for model in body["models"]}
        assert listed["lazy-model"]["loaded"] is True
        assert registry.unload("lazy-model") is True
        _, report = http(
            server.port,
            "GET",
            "/v1/models/lazy-model/stats",
            api_key=BLUE_KEY,
        )
        assert report["info"]["loaded"] is False
        assert report["snapshot"] is None

    def test_closed_registry_is_503(self):
        registry = ModelRegistry(
            (ModelVariant("m", ServiceConfig(tasks=("haswell",))),)
        )
        with PredictionHttpServer(registry, HttpServerConfig()) as running:
            registry.close()
            status, body = http(
                running.port,
                "POST",
                "/v1/models/m/predict",
                payload={"block": "mov rax, 1"},
            )
            assert status == 503
            assert body["error"]["code"] == "service_closed"


class TestStatsSchema:
    def test_stats_json_conforms_to_typed_schema(self, server):
        http(
            server.port,
            "POST",
            "/v1/models/granite-haswell/predict",
            payload={"block": "mov rax, 1"},
            api_key=ACME_KEY,
        )
        status, report = http(
            server.port,
            "GET",
            "/v1/models/granite-haswell/stats",
            api_key=ACME_KEY,
        )
        assert status == 200
        snapshot = report["snapshot"]
        # The wire schema is exactly the dataclass schema.
        assert set(snapshot) == {
            spec.name for spec in dataclasses.fields(ServiceSnapshot)
        }
        assert set(snapshot["queue"]) == {
            spec.name for spec in dataclasses.fields(QueueStats)
        }
        assert set(snapshot["flush"]) == {
            spec.name for spec in dataclasses.fields(FlushStats)
        }
        assert set(snapshot["model"]) == {
            spec.name for spec in dataclasses.fields(ModelStats)
        }
        assert snapshot["queue"]["submitted_requests"] >= 1
        assert snapshot["model"]["model_name"] == "granite"

    def test_per_tenant_counters_in_stats(self, server):
        for _ in range(2):
            http(
                server.port,
                "POST",
                "/v1/models/granite-haswell/predict",
                payload={"block": "mov rax, 1"},
                api_key=ACME_KEY,
            )
        http(
            server.port,
            "POST",
            "/v1/models/granite-haswell/predict",
            payload={"block": "mov rax, 1"},
            api_key=BLUE_KEY,
        )
        _, report = http(
            server.port,
            "GET",
            "/v1/models/granite-haswell/stats",
            api_key=BLUE_KEY,
        )
        by_tenant = report["info"]["requests_by_tenant"]
        assert by_tenant["acme"] >= 2
        assert by_tenant["blue"] >= 1


class TestStreamDisconnect:
    @pytest.fixture()
    def slow_server(self):
        """A server whose queue holds blocks for a minute: streamed chunks
        stay pending long enough for the client to walk away."""
        registry = ModelRegistry(
            (
                ModelVariant(
                    "slow",
                    ServiceConfig(
                        tasks=("haswell",),
                        max_batch_size=8,
                        async_options=AsyncOptions(
                            max_latency_ms=60_000.0,
                            flush_policy="static",
                        ),
                    ),
                ),
            )
        )
        with PredictionHttpServer(
            registry, HttpServerConfig(), own_registry=True
        ) as running:
            yield running

    def test_disconnect_cancels_pending_chunks(self, slow_server):
        port = slow_server.port
        payload = json.dumps(
            {"blocks": [f"mov rax, {i}" for i in range(6)], "stream": True}
        ).encode()
        head = (
            f"POST /v1/models/slow/predict HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        with socket.create_connection(("127.0.0.1", port), timeout=30.0) as sock:
            sock.sendall(head + payload)
            # Wait for the response headers: the stream is now live and
            # its chunk futures are queued behind the one-minute deadline.
            raw = b""
            while b"\r\n\r\n" not in raw:
                raw += sock.recv(4096)
            assert b"200" in raw.split(b"\r\n", 1)[0]
        # Socket closed mid-stream.  The server's poll loop must notice,
        # cancel the pending chunk futures and count the disconnect.
        deadline = time.monotonic() + 30.0
        body = {}
        while time.monotonic() < deadline:
            _, body = http(port, "GET", "/healthz")
            if body["stream_disconnects"] >= 1:
                break
            time.sleep(0.05)
        assert body["stream_disconnects"] == 1
        assert body["stream_cancelled_chunks"] >= 1

    def test_completed_stream_counts_no_disconnect(self, server):
        blocks = [f"add rax, {i}" for i in range(4)]
        status, lines = http(
            server.port,
            "POST",
            "/v1/models/granite-haswell/predict",
            payload={"blocks": blocks, "stream": True},
            api_key=ACME_KEY,
        )
        assert status == 200
        assert lines[-1]["done"] is True
        _, body = http(server.port, "GET", "/healthz")
        assert body["stream_disconnects"] == 0
        assert body["stream_cancelled_chunks"] == 0


class TestRecorderHook:
    def test_predicts_are_captured_as_a_trace(self):
        from repro.serve import TraceRecorder

        recorder = TraceRecorder()
        registry = ModelRegistry(
            (ModelVariant("rec", ServiceConfig(tasks=("haswell",))),)
        )
        with PredictionHttpServer(
            registry, HttpServerConfig(), own_registry=True, recorder=recorder
        ) as running:
            http(
                running.port,
                "POST",
                "/v1/models/rec/predict",
                payload={"blocks": ["mov rax, 1", "add rbx, 2"]},
            )
            http(
                running.port,
                "POST",
                "/v1/models/rec/predict",
                payload={"block": "sub rcx, 3", "priority": "bulk"},
            )
            # Rejected submissions are offered load too: a 404 model never
            # reaches a queue but still lands in the trace.
            http(
                running.port,
                "POST",
                "/v1/models/ghost/predict",
                payload={"block": "mov rdx, 4"},
            )
            _, body = http(running.port, "GET", "/healthz")
        assert body["requests_recorded"] == 3
        trace = recorder.trace()
        assert trace.num_requests == 3
        assert trace.requests[0].block_texts == ("mov rax, 1", "add rbx, 2")
        assert trace.requests[0].model == "rec"
        assert trace.requests[1].num_blocks == 1
        assert trace.requests[2].model == "ghost"
        offsets = [request.offset_s for request in trace.requests]
        assert offsets == sorted(offsets) and offsets[0] == 0.0


class TestServerLifecycle:
    def test_close_is_idempotent_and_start_after_close_fails(self):
        from repro.serve import ServiceClosedError

        running = PredictionHttpServer(
            ModelRegistry(), HttpServerConfig(), own_registry=True
        ).start()
        port = running.port
        assert http(port, "GET", "/healthz")[0] == 200
        running.close()
        running.close()
        with pytest.raises(ServiceClosedError):
            running.start()
        with pytest.raises(ConnectionError):
            socket.create_connection(("127.0.0.1", port), timeout=5)

    def test_port_conflict_surfaces_at_start(self):
        first = PredictionHttpServer(
            ModelRegistry(), HttpServerConfig(), own_registry=True
        ).start()
        second = PredictionHttpServer(
            ModelRegistry(),
            HttpServerConfig(port=first.port),
            own_registry=True,
        )
        try:
            with pytest.raises(OSError):
                second.start()
        finally:
            first.close()
