"""Latency-stats honesty tests: empty windows are NaN, never 0.0.

The historical bug: ``flush_wait_percentile`` and friends returned 0.0
for an empty sample window, so an idle (or dead) service read as
"zero latency" to every SLO check and to the autoscaler.  These tests pin
the fix at every layer — the percentile helper, the async service's
accessors, the snapshot dataclasses, and the JSON wire format.
"""

import json
import math

import numpy as np
import pytest

from repro.serve import (
    AsyncOptions,
    AsyncPredictionService,
    AsyncServiceConfig,
    PoolAutoscaler,
    PredictionRequest,
    latency_percentile,
)
from repro.serve.http import _jsonable


class TestLatencyPercentile:
    def test_empty_window_is_nan(self):
        assert math.isnan(latency_percentile([], 0.99))
        assert math.isnan(latency_percentile((), 0.0))
        assert math.isnan(latency_percentile(iter(()), 1.0))

    def test_single_sample_is_that_sample(self):
        for quantile in (0.0, 0.5, 0.99, 1.0):
            assert latency_percentile([42.0], quantile) == 42.0

    def test_matches_numpy_on_real_windows(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0]
        for quantile in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert latency_percentile(samples, quantile) == pytest.approx(
                float(np.quantile(samples, quantile))
            )

    def test_quantile_bounds_are_validated(self):
        with pytest.raises(ValueError):
            latency_percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            latency_percentile([1.0], 1.1)

    def test_nan_fails_every_slo_comparison(self):
        # The property every consumer relies on: "no data" can never pass
        # a latency budget.
        empty = latency_percentile([], 0.99)
        assert not empty <= 100.0
        assert not empty < float("inf")
        assert not empty == 0.0


class TestEmptyWindowSurfaces:
    def test_idle_service_percentiles_are_nan_everywhere(self):
        with AsyncPredictionService(AsyncOptions(max_latency_ms=5.0)) as service:
            assert math.isnan(service.stats.flush_wait_percentile(0.99))
            assert math.isnan(service.stats.flush_deadline_percentile(0.5))
            assert math.isnan(service.stats.request_latency_percentile(0.999))
            snapshot = service.snapshot()
        assert math.isnan(snapshot.flush.wait_p50_ms)
        assert math.isnan(snapshot.flush.wait_p99_ms)
        assert math.isnan(snapshot.flush.deadline_p50_ms)
        assert math.isnan(snapshot.flush.deadline_p99_ms)
        assert math.isnan(snapshot.flush.request_p50_ms)
        assert math.isnan(snapshot.flush.request_p99_ms)
        assert math.isnan(snapshot.flush.request_p999_ms)
        assert math.isnan(snapshot["flush_wait_p99_ms"])
        assert math.isnan(snapshot["request_latency_p999_ms"])
        assert math.isnan(snapshot.hedge.deadline_ms)

    def test_served_requests_populate_request_percentiles(self):
        with AsyncPredictionService(AsyncOptions(max_latency_ms=2.0)) as service:
            for _ in range(3):
                service.predict_blocks(["MOV RAX, RBX"])
            snapshot = service.snapshot()
        assert snapshot.flush.requests_completed == 3
        assert snapshot.flush.request_p50_ms > 0.0
        assert snapshot.flush.request_p999_ms >= snapshot.flush.request_p50_ms
        assert snapshot["request_latency_p50_ms"] == snapshot.flush.request_p50_ms


class TestNanWireRoundTrip:
    def test_jsonable_maps_nan_to_null(self):
        payload = {
            "p99": float("nan"),
            "inf": float("inf"),
            "fine": 1.5,
            "nested": [float("nan"), 2.0],
            "np_nan": np.float64("nan"),
        }
        wire = json.loads(json.dumps(_jsonable(payload)))
        assert wire == {
            "p99": None,
            "inf": None,
            "fine": 1.5,
            "nested": [None, 2.0],
            "np_nan": None,
        }

    def test_idle_snapshot_serializes_percentiles_as_null(self):
        with AsyncPredictionService(AsyncOptions(max_latency_ms=5.0)) as service:
            snapshot = service.snapshot()
        wire = json.loads(json.dumps(_jsonable(snapshot.to_dict())))
        flush = wire["flush"]
        for key in (
            "wait_p50_ms",
            "wait_p99_ms",
            "deadline_p50_ms",
            "deadline_p99_ms",
            "request_p50_ms",
            "request_p99_ms",
            "request_p999_ms",
        ):
            assert flush[key] is None, key
        assert wire["hedge"]["deadline_ms"] is None
        # And never the old lie:
        assert 0.0 not in {flush["wait_p99_ms"], flush["request_p999_ms"]}


class TestAutoscalerLatencySignals:
    def test_nan_signals_behave_like_legacy(self):
        legacy = PoolAutoscaler(1, 4, 8, cooldown_s=0.0, idle_grace_s=10.0)
        guarded = PoolAutoscaler(1, 4, 8, cooldown_s=0.0, idle_grace_s=10.0)
        nan = float("nan")
        for pending in (0, 10, 100, 500):
            assert guarded.decide(
                pending,
                2,
                now=1.0,
                flush_wait_p99_s=nan,
                batch_latency_s=nan,
                wait_budget_s=nan,
            ) == legacy.decide(pending, 2, now=1.0)

    def test_wait_pressure_scales_up_without_backlog(self):
        scaler = PoolAutoscaler(1, 4, 8, cooldown_s=0.0)
        # Queue looks empty, but clients waited 5x the budget: grow.
        assert (
            scaler.decide(
                0, 2, now=1.0, flush_wait_p99_s=0.5, wait_budget_s=0.1
            )
            == 3
        )

    def test_drain_pressure_scales_up_on_slow_batches(self):
        scaler = PoolAutoscaler(1, 4, 8, cooldown_s=0.0)
        # 4 batches pending x 200ms each / 2 workers = 400ms drain > 100ms
        # budget, despite the backlog threshold (2*8*2=32 blocks) not
        # being met.
        assert (
            scaler.decide(
                32 - 1,
                2,
                now=1.0,
                batch_latency_s=0.2,
                wait_budget_s=0.1,
            )
            == 3
        )

    def test_latency_pressure_blocks_scale_down(self):
        scaler = PoolAutoscaler(1, 4, 8, cooldown_s=0.0, idle_grace_s=0.5)
        assert scaler.decide(0, 2, now=0.0) == 2
        # A shallow queue would normally shrink after the grace period,
        # but over-budget waits mean the pool is not over-provisioned.
        assert (
            scaler.decide(
                0, 2, now=1.0, flush_wait_p99_s=0.5, wait_budget_s=0.1
            )
            == 3
        )

    def test_within_budget_still_shrinks_when_idle(self):
        scaler = PoolAutoscaler(1, 4, 8, cooldown_s=0.0, idle_grace_s=0.5)
        assert scaler.decide(0, 2, now=0.0, flush_wait_p99_s=0.01, wait_budget_s=0.1) == 2
        assert (
            scaler.decide(0, 2, now=1.0, flush_wait_p99_s=0.01, wait_budget_s=0.1)
            == 1
        )


class TestPerRequestVsPerFlushBias:
    def test_flush_waits_sample_only_the_oldest(self):
        """The reason request_* exists: wait_* under-samples the tail."""
        with AsyncPredictionService(
            AsyncServiceConfig(max_batch_size=64, max_latency_ms=20.0)
        ) as service:
            futures = [
                service.submit(PredictionRequest.of([f"ADD RAX, {index}"]))
                for index in range(8)
            ]
            for future in futures:
                future.result(timeout=30.0)
            stats = service.stats
            # One coalesced deadline flush: one wait sample, eight request
            # samples — the per-flush family cannot see seven of the eight
            # individual waits.
            assert len(stats.flush_waits) < len(stats.request_latencies)
            assert len(stats.request_latencies) == 8
