"""Tests of the async serving front end (repro.serve.queue / async_service)."""

import threading
import time

import numpy as np
import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    PredictionRequest,
    PredictionService,
    Priority,
    QueueFullError,
    RequestQueue,
    ServiceConfig,
)


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(GeneratorConfig(seed=21)).generate_blocks(24)


def _request(blocks, count=1, **kwargs):
    return PredictionRequest.of(blocks[:count], **kwargs)


class TestRequestQueue:
    def test_size_flush_is_immediate(self, blocks):
        queue = RequestQueue(max_blocks=64)
        for _ in range(4):
            queue.put(_request(blocks, 2))
        start = time.monotonic()
        entries, reason = queue.take_batch(max_blocks=8, max_wait_s=10.0)
        elapsed = time.monotonic() - start
        assert reason == "size"
        assert sum(e.request.num_blocks for e in entries) == 8
        assert elapsed < 1.0  # did not sit out the 10 s deadline

    def test_deadline_flush_single_straggler(self, blocks):
        """One lone request must flush at the deadline, not wait for company."""
        queue = RequestQueue(max_blocks=64)
        queue.put(_request(blocks, 1))
        start = time.monotonic()
        entries, reason = queue.take_batch(max_blocks=64, max_wait_s=0.05)
        elapsed = time.monotonic() - start
        assert reason == "deadline"
        assert len(entries) == 1
        assert 0.04 <= elapsed < 5.0

    def test_priority_jumps_full_bulk_queue(self, blocks):
        """A late high-priority request drains before earlier bulk traffic."""
        queue = RequestQueue(max_blocks=64)
        for index in range(6):
            queue.put(
                _request(blocks, 2, request_id=f"bulk-{index}"),
                priority=Priority.BULK,
            )
        queue.put(
            _request(blocks, 2, request_id="interactive"),
            priority=Priority.INTERACTIVE,
        )
        entries, _ = queue.take_batch(max_blocks=6, max_wait_s=10.0)
        assert entries[0].request.request_id == "interactive"
        # Remaining capacity goes to the oldest bulk requests, in order.
        assert [e.request.request_id for e in entries[1:]] == ["bulk-0", "bulk-1"]

    def test_ties_drain_in_arrival_order(self, blocks):
        queue = RequestQueue(max_blocks=64)
        for index in range(4):
            queue.put(_request(blocks, 1, request_id=f"r{index}"))
        entries, _ = queue.take_batch(max_blocks=64, max_wait_s=0.0)
        assert [e.request.request_id for e in entries] == ["r0", "r1", "r2", "r3"]

    def test_reject_policy(self, blocks):
        queue = RequestQueue(max_blocks=4, policy="reject")
        queue.put(_request(blocks, 4))
        with pytest.raises(QueueFullError):
            queue.put(_request(blocks, 1))
        assert queue.rejected == 1
        # Draining frees capacity again.
        queue.take_batch(max_blocks=64, max_wait_s=0.0)
        queue.put(_request(blocks, 1))

    def test_block_policy_times_out(self, blocks):
        queue = RequestQueue(max_blocks=4, policy="block")
        queue.put(_request(blocks, 4))
        start = time.monotonic()
        with pytest.raises(QueueFullError):
            queue.put(_request(blocks, 1), timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_block_policy_unblocks_on_drain(self, blocks):
        queue = RequestQueue(max_blocks=4, policy="block")
        queue.put(_request(blocks, 4))
        admitted = threading.Event()

        def producer():
            queue.put(_request(blocks, 2))
            admitted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not admitted.wait(0.05)  # blocked: queue is full
        queue.take_batch(max_blocks=64, max_wait_s=0.0)
        assert admitted.wait(5.0)
        thread.join(timeout=5.0)

    def test_oldest_entry_never_starved_by_priorities(self, blocks):
        """Sustained high-priority load cannot starve the arrival-oldest."""
        queue = RequestQueue(max_blocks=64)
        queue.put(_request(blocks, 2, request_id="old-bulk"), priority=Priority.BULK)
        for index in range(10):
            queue.put(
                _request(blocks, 2, request_id=f"hot-{index}"),
                priority=Priority.INTERACTIVE,
            )
        entries, _ = queue.take_batch(max_blocks=8, max_wait_s=10.0)
        request_ids = [entry.request.request_id for entry in entries]
        assert "old-bulk" in request_ids  # always flushed, despite priority
        assert request_ids[0] == "hot-0"  # but priority still leads the batch

    def test_oversized_request_never_fits(self, blocks):
        queue = RequestQueue(max_blocks=4, policy="block")
        with pytest.raises(QueueFullError):
            queue.put(_request(blocks, 5))

    def test_oversized_flush_not_starved(self, blocks):
        """A request bigger than the flush bound is returned alone."""
        queue = RequestQueue(max_blocks=64)
        queue.put(_request(blocks, 12))
        entries, _ = queue.take_batch(max_blocks=8, max_wait_s=0.0)
        assert len(entries) == 1
        assert entries[0].request.num_blocks == 12

    def test_close_drains_then_signals_exit(self, blocks):
        queue = RequestQueue(max_blocks=64)
        queue.put(_request(blocks, 2))
        queue.close()
        entries, reason = queue.take_batch(max_blocks=64, max_wait_s=10.0)
        assert reason == "close"
        assert len(entries) == 1
        entries, reason = queue.take_batch(max_blocks=64, max_wait_s=10.0)
        assert (entries, reason) == ([], "close")
        with pytest.raises(RuntimeError):
            queue.put(_request(blocks, 1))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            RequestQueue(max_blocks=0)
        with pytest.raises(ValueError):
            RequestQueue(max_blocks=4, policy="drop-oldest")


class TestAsyncPredictionService:
    def test_matches_direct_predictions(self, blocks):
        config = AsyncServiceConfig(max_batch_size=8, max_latency_ms=5.0)
        with AsyncPredictionService(
            config, service_config=ServiceConfig(model_name="granite")
        ) as service:
            direct = service.service.model.predict(blocks)
            futures = [
                service.submit(
                    PredictionRequest.of(blocks[index : index + 3]),
                    priority=Priority.BULK if index % 2 else Priority.INTERACTIVE,
                )
                for index in range(0, len(blocks), 3)
            ]
            for index, future in enumerate(futures):
                response = future.result(timeout=30.0)
                for task, values in direct.items():
                    np.testing.assert_allclose(
                        response.predictions[task],
                        values[3 * index : 3 * index + 3],
                        rtol=1e-9,
                    )
        stats = service.stats
        assert stats.requests == len(futures)
        assert stats.blocks == len(blocks)
        assert stats.flushes >= 1
        assert stats.flushed_blocks == len(blocks)

    def test_deadline_bounds_straggler_latency(self, blocks):
        """With a huge batch size, a lone request still answers by deadline."""
        config = AsyncServiceConfig(max_batch_size=4096, max_latency_ms=30.0)
        with AsyncPredictionService(
            config, service_config=ServiceConfig(model_name="granite")
        ) as service:
            service.predict_blocks(blocks[:1])  # warm every cache
            start = time.monotonic()
            service.predict_blocks(blocks[:1])
            elapsed = time.monotonic() - start
        assert service.stats.deadline_flushes >= 1
        # Generous bound: the deadline plus scheduling and service time.
        assert elapsed < 10.0

    def test_backpressure_reject_end_to_end(self, blocks):
        """With no dispatcher draining, the bounded queue rejects overflow."""
        config = AsyncServiceConfig(max_queue_blocks=4, backpressure="reject")
        service = AsyncPredictionService(
            config, service_config=ServiceConfig(model_name="granite")
        )
        accepted = service.submit(PredictionRequest.of(blocks[:4]))
        with pytest.raises(QueueFullError):
            service.submit(PredictionRequest.of(blocks[4:6]))
        # Closing still answers the admitted request (flush-on-close).
        service.close()
        assert accepted.result(timeout=30.0).num_blocks == 4
        assert service.queue.rejected == 1
        assert service.stats.close_flushes == 1

    def test_error_propagates_to_future(self, blocks):
        with AsyncPredictionService(
            service_config=ServiceConfig(model_name="granite")
        ) as service:
            future = service.submit(
                PredictionRequest.of(blocks[:1], tasks=("not-a-task",))
            )
            with pytest.raises(KeyError):
                future.result(timeout=30.0)

    def test_shared_service_left_open(self, blocks):
        shared = PredictionService(ServiceConfig(model_name="granite"))
        with AsyncPredictionService(service=shared) as front_end:
            front_end.predict_blocks(blocks[:2])
        # The sync service survives its async front end and keeps serving.
        assert shared.predict_blocks(blocks[:2])
        assert shared.stats.requests == 2

    def test_cancelled_future_is_skipped_not_fatal(self, blocks):
        """A client cancelling a queued future must not kill the dispatcher."""
        config = AsyncServiceConfig(max_batch_size=8, max_latency_ms=5.0)
        service = AsyncPredictionService(
            config, service_config=ServiceConfig(model_name="granite")
        )
        doomed = service.submit(PredictionRequest.of(blocks[:2]))
        kept = service.submit(PredictionRequest.of(blocks[2:4]))
        assert doomed.cancel()  # still queued: cancellable
        service.start()
        assert kept.result(timeout=30.0).num_blocks == 2
        # The dispatcher survived the cancelled entry and keeps serving.
        assert service.predict_blocks(blocks[:1])
        service.close()
        assert doomed.cancelled()

    def test_submit_after_close_raises(self, blocks):
        service = AsyncPredictionService(
            service_config=ServiceConfig(model_name="granite")
        )
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(PredictionRequest.of(blocks[:1]))
        with pytest.raises(RuntimeError):
            service.start()

    def test_conflicting_construction_rejected(self):
        with pytest.raises(ValueError):
            AsyncPredictionService(
                service=PredictionService(),
                service_config=ServiceConfig(),
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AsyncServiceConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            AsyncServiceConfig(max_latency_ms=-1.0)
