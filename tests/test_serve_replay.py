"""Tests of the tail-latency SLO harness (repro.serve.replay)."""

import json
import math

import pytest

from repro.serve import (
    AsyncOptions,
    AsyncPredictionService,
    Priority,
    ReplayReport,
    SloPolicy,
    Trace,
    TraceRecorder,
    TraceReplayer,
    TraceRequest,
    synthesize_trace,
)


class TestTraceRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRequest(offset_s=-0.1, block_texts=("MOV RAX, RBX",))
        with pytest.raises(ValueError):
            TraceRequest(offset_s=0.0, block_texts=())

    def test_dict_round_trip_drops_defaults(self):
        minimal = TraceRequest(offset_s=0.5, block_texts=("ADD RAX, 1",))
        raw = minimal.to_dict()
        assert "deadline_ms" not in raw and "model" not in raw
        assert TraceRequest.from_dict(raw) == minimal

        full = TraceRequest(
            offset_s=1.25,
            block_texts=("ADD RAX, 1", "SUB RBX, 2"),
            priority=int(Priority.INTERACTIVE),
            deadline_ms=50.0,
            model="granite-haswell",
            stream=True,
        )
        assert TraceRequest.from_dict(full.to_dict()) == full


class TestTrace:
    def test_offsets_must_be_non_decreasing(self):
        with pytest.raises(ValueError):
            Trace(
                requests=(
                    TraceRequest(offset_s=1.0, block_texts=("A",)),
                    TraceRequest(offset_s=0.5, block_texts=("B",)),
                )
            )

    def test_json_round_trip(self, tmp_path):
        trace = synthesize_trace(num_requests=20, seed=3, num_keys=8)
        again = Trace.from_json(trace.to_json())
        assert again.requests == trace.requests
        assert again.metadata == trace.metadata
        path = tmp_path / "trace.json"
        trace.save(str(path))
        assert Trace.load(str(path)).requests == trace.requests

    def test_version_mismatch_rejected(self):
        raw = json.loads(synthesize_trace(num_requests=2, seed=0).to_json())
        raw["version"] = 999
        with pytest.raises(ValueError, match="version"):
            Trace.from_json(json.dumps(raw))

    def test_scaled_compresses_the_timeline(self):
        trace = synthesize_trace(num_requests=50, seed=5, mean_rate_rps=100.0)
        fast = trace.scaled(10.0)
        assert fast.num_requests == trace.num_requests
        assert fast.duration_s == pytest.approx(trace.duration_s / 10.0)
        assert fast.metadata["scaled_by"] == 10.0
        # Contents are untouched — only arrivals move.
        assert [r.block_texts for r in fast.requests] == [
            r.block_texts for r in trace.requests
        ]
        with pytest.raises(ValueError):
            trace.scaled(0.0)


class TestSynthesizeTrace:
    def test_deterministic_under_fixed_seed(self):
        first = synthesize_trace(num_requests=100, seed=42)
        second = synthesize_trace(num_requests=100, seed=42)
        assert first.to_json() == second.to_json()
        different = synthesize_trace(num_requests=100, seed=43)
        assert different.to_json() != first.to_json()

    def test_zipf_head_dominates(self):
        trace = synthesize_trace(
            num_requests=500, seed=1, num_keys=32, zipf_alpha=1.2
        )
        counts = {}
        for request in trace.requests:
            for text in request.block_texts:
                counts[text] = counts.get(text, 0) + 1
        top = max(counts.values())
        # With alpha=1.2 over 32 keys the head carries >15% of traffic;
        # a uniform draw would give ~3%.
        assert top / trace.num_blocks > 0.10
        assert len(counts) <= 32

    def test_mean_rate_is_roughly_honored(self):
        trace = synthesize_trace(
            num_requests=2000, seed=9, mean_rate_rps=500.0
        )
        realized = (trace.num_requests - 1) / trace.duration_s
        assert realized == pytest.approx(500.0, rel=0.25)

    def test_explicit_universe_and_metadata(self):
        universe = ["MOV RAX, RBX", "ADD RCX, 4", "SUB RDX, 8"]
        trace = synthesize_trace(
            num_requests=30,
            seed=2,
            block_universe=universe,
            num_keys=3,
            deadline_ms=75.0,
        )
        texts = {text for r in trace.requests for text in r.block_texts}
        assert texts <= set(universe)
        assert all(r.deadline_ms == 75.0 for r in trace.requests)
        assert trace.metadata["source"] == "synthesized"
        assert trace.metadata["seed"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=0, seed=0)
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=1, seed=0, mean_rate_rps=0.0)
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=1, seed=0, burstiness=0.5)
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=1, seed=0, burst_fraction=1.5)
        with pytest.raises(ValueError):
            synthesize_trace(num_requests=1, seed=0, block_universe=[])


class TestTraceRecorder:
    def test_offsets_are_relative_to_first_record(self):
        recorder = TraceRecorder()
        recorder.record(["A"], now=100.0)
        recorder.record(["B"], now=100.5, priority=int(Priority.INTERACTIVE))
        recorder.record(["C", "D"], now=102.0, model="tiny-queue")
        trace = recorder.trace(note="unit")
        assert [r.offset_s for r in trace.requests] == [0.0, 0.5, 2.0]
        assert trace.requests[1].priority == int(Priority.INTERACTIVE)
        assert trace.requests[2].model == "tiny-queue"
        assert trace.metadata["source"] == "recorded"
        assert trace.metadata["note"] == "unit"
        assert len(recorder) == 3

    def test_capture_is_bounded(self):
        recorder = TraceRecorder(max_requests=2)
        for index in range(5):
            recorder.record(["X"], now=float(index))
        assert len(recorder) == 2
        trace = recorder.trace()
        assert trace.num_requests == 2
        assert trace.metadata["dropped"] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_requests=0)


class TestSloPolicy:
    @staticmethod
    def _report(**overrides):
        base = dict(
            num_requests=10,
            completed=10,
            errors=0,
            rejected=0,
            duration_s=1.0,
            offered_rps=10.0,
            speedup=1.0,
            p50_ms=5.0,
            p99_ms=20.0,
            p999_ms=30.0,
            mean_ms=6.0,
            max_ms=30.0,
            jitter_ms=2.0,
            schedule_lag_p99_ms=0.1,
            latencies_ms=tuple(float(v) for v in range(1, 11)),
        )
        base.update(overrides)
        return ReplayReport(**base)

    def test_within_budget_passes(self):
        policy = SloPolicy(p50_ms=10.0, p99_ms=25.0, p999_ms=40.0)
        verdict = policy.check(self._report())
        assert verdict.met and verdict.violations == ()

    def test_over_budget_fails_with_reasons(self):
        policy = SloPolicy(p99_ms=10.0)
        verdict = policy.check(self._report())
        assert not verdict.met
        assert any("p99" in violation for violation in verdict.violations)

    def test_nan_percentiles_never_pass(self):
        nan = float("nan")
        empty = self._report(
            completed=0, p50_ms=nan, p99_ms=nan, p999_ms=nan, latencies_ms=()
        )
        verdict = SloPolicy(p99_ms=1e9).check(empty)
        assert not verdict.met  # measured nothing != met the SLO

    def test_violation_rate_budget(self):
        # 3 of 10 latencies exceed 7ms.
        report = self._report()
        assert report.violation_rate(7.0) == pytest.approx(0.3)
        assert not SloPolicy(budget_ms=7.0, max_violation_rate=0.2).check(report).met
        assert SloPolicy(budget_ms=7.0, max_violation_rate=0.3).check(report).met
        assert math.isnan(self._report(latencies_ms=()).violation_rate(7.0))

    def test_error_rate_budget(self):
        report = self._report(errors=1, rejected=1)
        assert not SloPolicy(max_error_rate=0.1).check(report).met
        assert SloPolicy(max_error_rate=0.2).check(report).met


class TestTraceReplayer:
    def test_replays_against_a_live_service(self):
        trace = synthesize_trace(
            num_requests=30, seed=17, num_keys=8, mean_rate_rps=400.0
        )
        policy = SloPolicy(p50_ms=5_000.0, max_error_rate=0.0)
        with AsyncPredictionService(AsyncOptions(max_latency_ms=2.0)) as service:
            replayer = TraceReplayer(service, speedup=2.0, slo=policy)
            report = replayer.run(trace)
        assert report.num_requests == 30
        assert report.completed == 30
        assert report.errors == 0 and report.rejected == 0
        assert report.p50_ms > 0.0
        assert report.p999_ms >= report.p99_ms >= report.p50_ms
        assert not math.isnan(report.jitter_ms)
        assert report.speedup == 2.0
        assert report.slo is not None and report.slo.met
        wire = report.to_dict()
        assert "latencies_ms" not in wire
        assert wire["slo"]["met"] is True
        assert len(report.to_dict(include_latencies=True)["latencies_ms"]) == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplayer(service=None, speedup=0.0)
        with pytest.raises(ValueError):
            TraceReplayer(service=None, result_timeout_s=0.0)
