"""Tests of the self-healing machinery: retries, breakers, backoff, degradation."""

import random
import threading

import numpy as np
import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    AsyncOptions,
    AsyncPredictionService,
    PredictionRequest,
    ServiceConfig,
)
from repro.serve.faults import FaultPlan, FaultSpec
from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    BreakerRing,
    CircuitBreaker,
    RespawnGovernor,
    RespawnPolicy,
    RetryPolicy,
    StalePredictionCache,
    run_with_retries,
)
from repro.serve.ring import HashRing
from repro.serve.types import ServiceClosedError


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Retry policy and the sanctioned loop
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_delays_are_deterministic_per_token_and_attempt(self):
        policy = RetryPolicy(seed=9)
        assert policy.delay_s(2, "req-1") == RetryPolicy(seed=9).delay_s(2, "req-1")

    def test_delays_are_capped_and_jitter_bounded(self):
        policy = RetryPolicy(
            base_delay_ms=10.0, max_delay_ms=40.0, multiplier=2.0, jitter=0.5
        )
        for attempt in range(6):
            delay_ms = policy.delay_s(attempt, "t") * 1000.0
            capped = min(10.0 * 2.0**attempt, 40.0)
            assert 0.5 * capped <= delay_ms <= capped

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_budget_disabled_when_zero(self):
        assert RetryPolicy(budget=0).make_budget() is None


class TestRunWithRetries:
    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "done"

        retries = []
        result = run_with_retries(
            flaky,
            RetryPolicy(max_attempts=5),
            on_retry=lambda attempt, delay, error: retries.append(delay),
            sleep=lambda seconds: None,
        )
        assert result == "done"
        assert calls["n"] == 3
        assert len(retries) == 2

    def test_non_retryable_raises_immediately(self):
        calls = {"n": 0}

        def closed():
            calls["n"] += 1
            raise ServiceClosedError("closed")

        with pytest.raises(ServiceClosedError):
            run_with_retries(
                closed,
                RetryPolicy(max_attempts=5),
                retryable=lambda error: not isinstance(error, ServiceClosedError),
                sleep=lambda seconds: None,
            )
        assert calls["n"] == 1

    def test_exhaustion_reraises_last_error(self):
        def always():
            raise RuntimeError("still broken")

        with pytest.raises(RuntimeError, match="still broken"):
            run_with_retries(
                always, RetryPolicy(max_attempts=3), sleep=lambda seconds: None
            )

    def test_budget_denial_stops_retrying(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=10, budget=2, budget_window_s=60.0)
        budget = policy.make_budget(clock=clock)
        attempts = {"n": 0}

        def always():
            attempts["n"] += 1
            raise RuntimeError("down")

        with pytest.raises(RuntimeError):
            run_with_retries(
                always, policy, budget=budget, sleep=lambda seconds: None
            )
        # First attempt + the two budgeted retries, then denial.
        assert attempts["n"] == 3
        assert budget.denied == 1

    def test_budget_window_slides(self):
        clock = FakeClock()
        budget = RetryPolicy(budget=1, budget_window_s=5.0).make_budget(clock=clock)
        assert budget.try_acquire() is True
        assert budget.try_acquire() is False
        clock.advance(6.0)
        assert budget.try_acquire() is True


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

_LEGAL_TRANSITIONS = {
    (BREAKER_CLOSED, BREAKER_CLOSED),
    (BREAKER_CLOSED, BREAKER_OPEN),
    (BREAKER_OPEN, BREAKER_OPEN),
    (BREAKER_OPEN, BREAKER_HALF_OPEN),
    (BREAKER_HALF_OPEN, BREAKER_HALF_OPEN),
    (BREAKER_HALF_OPEN, BREAKER_OPEN),
    (BREAKER_HALF_OPEN, BREAKER_CLOSED),
}


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        breaker.record_failure(0)
        breaker.record_failure(0)
        breaker.record_success(0)  # success resets the consecutive count
        breaker.record_failure(0)
        breaker.record_failure(0)
        assert breaker.state(0) == BREAKER_CLOSED
        breaker.record_failure(0)
        assert breaker.state(0) == BREAKER_OPEN
        assert breaker.counters()["trips"] == 1

    def test_open_refuses_traffic_until_reset_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout_s=2.0), clock=clock
        )
        breaker.record_failure(0)
        assert breaker.allow(0) is False
        clock.advance(1.0)
        assert breaker.allow(0) is False
        clock.advance(1.5)
        assert breaker.state(0) == BREAKER_HALF_OPEN
        assert breaker.allow(0) is True

    def test_half_open_admits_exactly_the_probe_quota(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout_s=1.0, probe_quota=2),
            clock=clock,
        )
        breaker.record_failure(0)
        clock.advance(1.5)
        admitted = [breaker.allow(0) for _ in range(5)]
        assert admitted == [True, True, False, False, False]
        # An outcome frees a probe slot.
        breaker.record_success(0)
        assert breaker.allow(0) is True

    def test_probe_failure_reopens_and_probe_successes_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=1, reset_timeout_s=1.0, success_threshold=2
            ),
            clock=clock,
        )
        breaker.record_failure(0)
        clock.advance(1.5)
        assert breaker.allow(0) is True
        breaker.record_failure(0)
        assert breaker.state(0) == BREAKER_OPEN
        assert breaker.counters()["trips"] == 2
        clock.advance(1.5)
        breaker.allow(0)
        breaker.record_success(0)
        assert breaker.state(0) == BREAKER_HALF_OPEN
        breaker.allow(0)
        breaker.record_success(0)
        assert breaker.state(0) == BREAKER_CLOSED
        assert breaker.counters()["recoveries"] == 1

    def test_late_success_while_open_is_ignored(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        breaker.record_failure(0)
        breaker.record_success(0)  # stale outcome from before the trip
        assert breaker.state(0) == BREAKER_OPEN

    def test_workers_are_independent(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        breaker.record_failure(3)
        assert breaker.state(3) == BREAKER_OPEN
        assert breaker.state(7) == BREAKER_CLOSED
        assert breaker.open_count() == 1

    @pytest.mark.parametrize("seed", range(12))
    def test_random_event_sequences_never_reach_an_illegal_state(self, seed):
        """Property test: any interleaving of outcomes, probes and time only
        ever walks legal transitions, and open always refuses traffic."""
        rng = random.Random(seed)
        clock = FakeClock()
        policy = BreakerPolicy(
            failure_threshold=rng.randint(1, 4),
            reset_timeout_s=rng.choice([0.5, 1.0, 2.0]),
            probe_quota=rng.randint(1, 3),
            success_threshold=rng.randint(1, 3),
        )
        breaker = CircuitBreaker(policy, clock=clock)
        previous = breaker.state(0)
        for _ in range(300):
            event = rng.choice(["fail", "success", "allow", "tick"])
            if event == "fail":
                breaker.record_failure(0)
            elif event == "success":
                breaker.record_success(0)
            elif event == "allow":
                admitted = breaker.allow(0)
                if previous == BREAKER_OPEN:
                    assert admitted is False
                elif previous == BREAKER_CLOSED:
                    assert admitted is True
            else:
                clock.advance(rng.choice([0.1, 0.6, 2.5]))
            current = breaker.state(0)
            if event == "tick":
                # Time alone can only hold state or move open -> half-open.
                assert (previous, current) in {
                    (previous, previous),
                    (BREAKER_OPEN, BREAKER_HALF_OPEN),
                }
            assert (previous, current) in _LEGAL_TRANSITIONS
            assert current in (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN)
            previous = current

    @pytest.mark.parametrize("seed", range(6))
    def test_half_open_admissions_bounded_by_quota_under_random_load(self, seed):
        rng = random.Random(seed)
        clock = FakeClock()
        quota = rng.randint(1, 3)
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout_s=1.0, probe_quota=quota),
            clock=clock,
        )
        breaker.record_failure(0)
        clock.advance(1.5)
        assert breaker.state(0) == BREAKER_HALF_OPEN
        admitted = sum(1 for _ in range(quota + 5) if breaker.allow(0))
        assert admitted == quota


class TestBreakerRing:
    def test_routes_around_open_workers(self):
        ring = HashRing(nodes=(0, 1, 2))
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        wrapped = BreakerRing(ring, breaker)
        key = 123456
        true_owner = ring.owner(key)
        assert wrapped.owner(key) == true_owner
        breaker.record_failure(true_owner)
        rerouted = wrapped.owner(key)
        assert rerouted != true_owner
        assert rerouted in (0, 1, 2)

    def test_all_open_falls_back_to_true_owner(self):
        ring = HashRing(nodes=(0, 1, 2))
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        for node in (0, 1, 2):
            breaker.record_failure(node)
        wrapped = BreakerRing(ring, breaker)
        key = 98765
        assert wrapped.owner(key) == ring.owners(key, count=3)[0]

    def test_duck_types_the_ring_surface(self):
        ring = HashRing(nodes=(0, 1, 2))
        wrapped = BreakerRing(ring, CircuitBreaker())
        assert len(wrapped) == 3
        assert set(wrapped.nodes) == {0, 1, 2}
        assert wrapped.shares() == ring.shares()
        assert wrapped.owners(5, count=2) == ring.owners(5, count=2)


# ---------------------------------------------------------------------------
# Respawn governance
# ---------------------------------------------------------------------------


class TestRespawnGovernor:
    def make(self, clock):
        return RespawnGovernor(
            RespawnPolicy(
                max_respawns=2,
                window_s=10.0,
                backoff_base_s=1.0,
                backoff_max_s=8.0,
                multiplier=2.0,
            ),
            clock=clock,
        )

    def test_allows_until_window_overflows(self):
        clock = FakeClock()
        governor = self.make(clock)
        for _ in range(2):
            assert governor.may_respawn(0) is True
            governor.record_respawn(0)
        assert governor.may_respawn(0) is False
        assert governor.in_backoff(0) is True
        assert governor.backoff_workers() == [0]
        assert governor.suppressed >= 1

    def test_backoff_expires_and_doubles_on_repeat_overflow(self):
        clock = FakeClock()
        governor = self.make(clock)
        for _ in range(2):
            governor.record_respawn(0)
        assert governor.may_respawn(0) is False  # starts 1s backoff
        clock.advance(0.5)
        assert governor.may_respawn(0) is False  # still inside it
        clock.advance(0.6)
        # Backoff over, but the window still holds both respawns -> a second
        # overflow with a doubled (2s) backoff.
        assert governor.may_respawn(0) is False
        clock.advance(1.5)
        assert governor.may_respawn(0) is False
        clock.advance(9.0)
        # Window drained and backoff expired: healthy again.
        assert governor.may_respawn(0) is True
        assert governor.in_backoff(0) is False

    def test_workers_are_independent(self):
        clock = FakeClock()
        governor = self.make(clock)
        for _ in range(2):
            governor.record_respawn(0)
        assert governor.may_respawn(0) is False
        assert governor.may_respawn(1) is True

    def test_forget_clears_state(self):
        clock = FakeClock()
        governor = self.make(clock)
        for _ in range(2):
            governor.record_respawn(0)
        assert governor.may_respawn(0) is False
        governor.forget(0)
        assert governor.may_respawn(0) is True


# ---------------------------------------------------------------------------
# Stale prediction cache
# ---------------------------------------------------------------------------


class TestStalePredictionCache:
    def test_round_trip(self):
        cache = StalePredictionCache()
        cache.record(
            ["a", "b"],
            {"haswell": np.array([1.0, 2.0]), "skylake": np.array([3.0, 4.0])},
        )
        payload = cache.lookup(["b", "a"])
        np.testing.assert_allclose(payload["haswell"], [2.0, 1.0])
        np.testing.assert_allclose(payload["skylake"], [4.0, 3.0])
        assert cache.served == 1

    def test_partial_coverage_returns_none(self):
        cache = StalePredictionCache()
        cache.record(["a"], {"haswell": np.array([1.0])})
        assert cache.lookup(["a", "b"]) is None
        assert cache.lookup(["a"], tasks=("skylake",)) is None

    def test_task_subset_lookup(self):
        cache = StalePredictionCache()
        cache.record(
            ["a"], {"haswell": np.array([1.0]), "skylake": np.array([2.0])}
        )
        payload = cache.lookup(["a"], tasks=("skylake",))
        assert set(payload) == {"skylake"}

    def test_dtype_follows_recorded_arrays(self):
        cache = StalePredictionCache()
        cache.record(["a"], {"haswell": np.array([1.0], dtype=np.float32)})
        assert cache.lookup(["a"])["haswell"].dtype == np.float32

    def test_bounded_by_maxsize(self):
        cache = StalePredictionCache(maxsize=2)
        for index in range(4):
            cache.record([f"t{index}"], {"haswell": np.array([float(index)])})
        assert len(cache) == 2
        assert cache.lookup(["t0"]) is None
        assert cache.lookup(["t3"]) is not None


# ---------------------------------------------------------------------------
# End-to-end self-healing through the async front end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def chaos_blocks():
    return BlockGenerator(GeneratorConfig(seed=91)).generate_blocks(24)


class TestDegradedMode:
    def test_stale_cache_serves_when_backend_fails(self, chaos_blocks):
        config = ServiceConfig(max_batch_size=8)
        options = AsyncOptions(
            retry_policy=RetryPolicy(max_attempts=2, base_delay_ms=1.0),
            degraded_mode=True,
            max_latency_ms=5.0,
        )
        with AsyncPredictionService(options, service_config=config) as front:
            warm = front.submit(PredictionRequest.of(chaos_blocks[:4])).result(30)
            assert warm.degraded is False

            real_submit = front.service.submit

            def failing(requests):
                raise RuntimeError("backend down")

            front.service.submit = failing
            try:
                stale = front.submit(
                    PredictionRequest.of(chaos_blocks[:4])
                ).result(30)
            finally:
                front.service.submit = real_submit
            assert stale.degraded is True
            for task in warm.predictions:
                np.testing.assert_allclose(
                    stale.predictions[task], warm.predictions[task]
                )
            snapshot = front.snapshot()
            assert snapshot.resilience.degraded_responses == 1
            assert snapshot.resilience.retries >= 1
            assert snapshot.resilience.stale_cache_entries == 4

    def test_uncached_blocks_still_fail(self, chaos_blocks):
        config = ServiceConfig(max_batch_size=8)
        options = AsyncOptions(degraded_mode=True, max_latency_ms=5.0)
        with AsyncPredictionService(options, service_config=config) as front:

            def failing(requests):
                raise RuntimeError("backend down")

            front.service.submit = failing
            future = front.submit(PredictionRequest.of(chaos_blocks[:2]))
            with pytest.raises(RuntimeError, match="backend down"):
                future.result(30)


class TestQueueSaturationFault:
    def test_injected_rejections_are_counted(self, chaos_blocks):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "queue_saturation", start_after_events=1, duration_events=1
                ),
            )
        )
        config = ServiceConfig(max_batch_size=8, fault_plan=plan)
        options = AsyncOptions(max_latency_ms=5.0)
        with AsyncPredictionService(options, service_config=config) as front:
            from repro.serve import QueueFullError

            first = front.submit(PredictionRequest.of(chaos_blocks[:1]))
            with pytest.raises(QueueFullError, match="injected"):
                front.submit(PredictionRequest.of(chaos_blocks[1:2]))
            third = front.submit(PredictionRequest.of(chaos_blocks[2:3]))
            first.result(30)
            third.result(30)
            assert front.snapshot().resilience.injected_queue_rejections == 1


class TestRespawnUnderLiveTraffic:
    def test_no_request_lost_or_duplicated_during_crash_storm(self, chaos_blocks):
        texts = [block.canonical_text() for block in chaos_blocks]
        plan = FaultPlan(seed=17, specs=(FaultSpec("crash", probability=0.25),))
        prone = plan.prone_texts("crash", texts)
        assert prone, "seed must select at least one crash-prone text"
        config = ServiceConfig(
            num_workers=2,
            max_batch_size=4,
            fault_plan=plan,
        )
        options = AsyncOptions(
            retry_policy=RetryPolicy(max_attempts=3, base_delay_ms=1.0),
            max_latency_ms=5.0,
        )
        completions = []
        completion_lock = threading.Lock()

        def on_done(index):
            def callback(done):
                with completion_lock:
                    completions.append(index)

            return callback

        with AsyncPredictionService(options, service_config=config) as front:
            futures = []
            for index, block in enumerate(chaos_blocks):
                future = front.submit(PredictionRequest.of([block]))
                future.add_done_callback(on_done(index))
                futures.append(future)
            responses = [future.result(120) for future in futures]
            snapshot = front.snapshot()
        # Every request resolved exactly once, with the right shape.
        assert sorted(completions) == list(range(len(chaos_blocks)))
        for response in responses:
            assert response.num_blocks == 1
            for values in response.predictions.values():
                assert np.isfinite(np.asarray(values)).all()
        assert snapshot.flush.requests_completed == len(chaos_blocks)
        assert snapshot.model.respawns >= 1
