"""Tests of the consistent hash ring (repro.serve.ring) and ring coalescing."""

import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    HashRing,
    PredictionRequest,
    coalesce_requests_by_ring,
    shard_key,
)


@pytest.fixture(scope="module")
def keys():
    blocks = BlockGenerator(GeneratorConfig(seed=7)).generate_blocks(400)
    return [shard_key(block.canonical_text()) for block in blocks]


class TestHashRing:
    def test_membership(self):
        ring = HashRing(nodes=(0, 1, 2))
        assert ring.nodes == (0, 1, 2)
        assert len(ring) == 3
        assert 1 in ring and 5 not in ring

    def test_owner_is_stable(self, keys):
        ring = HashRing(nodes=range(4))
        replica = HashRing(nodes=range(4))
        for key in keys:
            assert ring.owner(key) == replica.owner(key) == ring.owner(key)

    def test_owner_only_valid_nodes(self, keys):
        ring = HashRing(nodes=(0, 1, 2))
        assert {ring.owner(key) for key in keys} <= {0, 1, 2}

    def test_every_node_owns_something(self, keys):
        # 128 vnodes per node keep even a small ring balanced enough that
        # 400 random keys touch every node.
        ring = HashRing(nodes=range(8))
        assert {ring.owner(key) for key in keys} == set(range(8))

    def test_shares_sum_to_one(self):
        for count in (1, 2, 3, 7):
            shares = HashRing(nodes=range(count)).shares()
            assert set(shares) == set(range(count))
            assert sum(shares.values()) == pytest.approx(1.0)
            # No node owns a wildly disproportionate share.
            assert max(shares.values()) < 3.0 / count

    def test_add_node_moves_keys_only_to_new_node(self, keys):
        """The consistency property: growing N -> N+1 moves ~1/(N+1) of the
        keys, all of them *to* the new node; nobody else's keys move."""
        for count in (2, 3, 4):
            before = HashRing(nodes=range(count))
            after = HashRing(nodes=range(count + 1))
            moved = 0
            for key in keys:
                old, new = before.owner(key), after.owner(key)
                if old != new:
                    moved += 1
                    assert new == count  # moved keys land on the new node only
            fraction = moved / len(keys)
            # Expectation is 1/(count+1); allow generous slack for a small
            # sample over a 128-vnode ring.
            assert 0.0 < fraction < 2.0 / (count + 1)

    def test_remove_node_is_inverse_of_add(self, keys):
        ring = HashRing(nodes=range(4))
        reference = {key: ring.owner(key) for key in keys}
        ring.add_node(4)
        ring.remove_node(4)
        assert ring.nodes == (0, 1, 2, 3)
        assert {key: ring.owner(key) for key in keys} == reference

    def test_incremental_equals_from_scratch(self, keys):
        grown = HashRing(nodes=(0,))
        grown.add_node(1)
        grown.add_node(2)
        fresh = HashRing(nodes=range(3))
        for key in keys:
            assert grown.owner(key) == fresh.owner(key)

    def test_invalid_operations(self):
        with pytest.raises(ValueError):
            HashRing(num_vnodes=0)
        ring = HashRing(nodes=(0, 1))
        with pytest.raises(ValueError):
            ring.add_node(0)
        with pytest.raises(ValueError):
            ring.remove_node(9)
        empty = HashRing()
        with pytest.raises(LookupError):
            empty.owner(123)
        assert empty.shares() == {}


class TestRingCoalescing:
    @pytest.fixture(scope="class")
    def blocks(self):
        return BlockGenerator(GeneratorConfig(seed=11)).generate_blocks(40)

    def test_covers_every_block_once(self, blocks):
        ring = HashRing(nodes=range(3))
        requests = [
            PredictionRequest.of(blocks[:25]),
            PredictionRequest.of(blocks[25:]),
        ]
        assignments = coalesce_requests_by_ring(requests, 8, ring)
        origins = [origin for _, batch in assignments for origin in batch.origins]
        assert sorted(origins) == [
            (index, position)
            for index, request in enumerate(requests)
            for position in range(request.num_blocks)
        ]
        assert all(batch.num_blocks <= 8 for _, batch in assignments)

    def test_blocks_routed_by_ring_owner(self, blocks):
        ring = HashRing(nodes=range(4))
        assignments = coalesce_requests_by_ring(
            [PredictionRequest.of(blocks)], 8, ring
        )
        for worker_id, batch in assignments:
            for text in batch.block_texts:
                assert ring.owner(shard_key(text)) == worker_id

    def test_routing_survives_resize_for_unmoved_keys(self, blocks):
        """After adding a worker, every block either keeps its worker or
        lands on the new one — the cache-affinity contract of elasticity."""
        small = HashRing(nodes=range(2))
        grown = HashRing(nodes=range(3))
        request = [PredictionRequest.of(blocks)]
        before = {
            text: worker_id
            for worker_id, batch in coalesce_requests_by_ring(request, 64, small)
            for text in batch.block_texts
        }
        after = {
            text: worker_id
            for worker_id, batch in coalesce_requests_by_ring(request, 64, grown)
            for text in batch.block_texts
        }
        assert set(before) == set(after)
        for text, owner in after.items():
            assert owner == before[text] or owner == 2

    def test_invalid_arguments(self, blocks):
        request = PredictionRequest.of(blocks[:2])
        with pytest.raises(ValueError):
            coalesce_requests_by_ring([request], 0, HashRing(nodes=(0,)))
        with pytest.raises(ValueError):
            coalesce_requests_by_ring([request], 4, HashRing())
