"""Tests of the consistent hash ring (repro.serve.ring) and ring coalescing."""

import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    HashRing,
    HotKeyRouter,
    HotKeyTracker,
    PredictionRequest,
    coalesce_requests_by_ring,
    shard_key,
)


@pytest.fixture(scope="module")
def keys():
    blocks = BlockGenerator(GeneratorConfig(seed=7)).generate_blocks(400)
    return [shard_key(block.canonical_text()) for block in blocks]


class TestHashRing:
    def test_membership(self):
        ring = HashRing(nodes=(0, 1, 2))
        assert ring.nodes == (0, 1, 2)
        assert len(ring) == 3
        assert 1 in ring and 5 not in ring

    def test_owner_is_stable(self, keys):
        ring = HashRing(nodes=range(4))
        replica = HashRing(nodes=range(4))
        for key in keys:
            assert ring.owner(key) == replica.owner(key) == ring.owner(key)

    def test_owner_only_valid_nodes(self, keys):
        ring = HashRing(nodes=(0, 1, 2))
        assert {ring.owner(key) for key in keys} <= {0, 1, 2}

    def test_every_node_owns_something(self, keys):
        # 128 vnodes per node keep even a small ring balanced enough that
        # 400 random keys touch every node.
        ring = HashRing(nodes=range(8))
        assert {ring.owner(key) for key in keys} == set(range(8))

    def test_shares_sum_to_one(self):
        for count in (1, 2, 3, 7):
            shares = HashRing(nodes=range(count)).shares()
            assert set(shares) == set(range(count))
            assert sum(shares.values()) == pytest.approx(1.0)
            # No node owns a wildly disproportionate share.
            assert max(shares.values()) < 3.0 / count

    def test_add_node_moves_keys_only_to_new_node(self, keys):
        """The consistency property: growing N -> N+1 moves ~1/(N+1) of the
        keys, all of them *to* the new node; nobody else's keys move."""
        for count in (2, 3, 4):
            before = HashRing(nodes=range(count))
            after = HashRing(nodes=range(count + 1))
            moved = 0
            for key in keys:
                old, new = before.owner(key), after.owner(key)
                if old != new:
                    moved += 1
                    assert new == count  # moved keys land on the new node only
            fraction = moved / len(keys)
            # Expectation is 1/(count+1); allow generous slack for a small
            # sample over a 128-vnode ring.
            assert 0.0 < fraction < 2.0 / (count + 1)

    def test_remove_node_is_inverse_of_add(self, keys):
        ring = HashRing(nodes=range(4))
        reference = {key: ring.owner(key) for key in keys}
        ring.add_node(4)
        ring.remove_node(4)
        assert ring.nodes == (0, 1, 2, 3)
        assert {key: ring.owner(key) for key in keys} == reference

    def test_incremental_equals_from_scratch(self, keys):
        grown = HashRing(nodes=(0,))
        grown.add_node(1)
        grown.add_node(2)
        fresh = HashRing(nodes=range(3))
        for key in keys:
            assert grown.owner(key) == fresh.owner(key)

    def test_invalid_operations(self):
        with pytest.raises(ValueError):
            HashRing(num_vnodes=0)
        ring = HashRing(nodes=(0, 1))
        with pytest.raises(ValueError):
            ring.add_node(0)
        with pytest.raises(ValueError):
            ring.remove_node(9)
        empty = HashRing()
        with pytest.raises(LookupError):
            empty.owner(123)
        assert empty.shares() == {}


class TestRingCoalescing:
    @pytest.fixture(scope="class")
    def blocks(self):
        return BlockGenerator(GeneratorConfig(seed=11)).generate_blocks(40)

    def test_covers_every_block_once(self, blocks):
        ring = HashRing(nodes=range(3))
        requests = [
            PredictionRequest.of(blocks[:25]),
            PredictionRequest.of(blocks[25:]),
        ]
        assignments = coalesce_requests_by_ring(requests, 8, ring)
        origins = [origin for _, batch in assignments for origin in batch.origins]
        assert sorted(origins) == [
            (index, position)
            for index, request in enumerate(requests)
            for position in range(request.num_blocks)
        ]
        assert all(batch.num_blocks <= 8 for _, batch in assignments)

    def test_blocks_routed_by_ring_owner(self, blocks):
        ring = HashRing(nodes=range(4))
        assignments = coalesce_requests_by_ring(
            [PredictionRequest.of(blocks)], 8, ring
        )
        for worker_id, batch in assignments:
            for text in batch.block_texts:
                assert ring.owner(shard_key(text)) == worker_id

    def test_routing_survives_resize_for_unmoved_keys(self, blocks):
        """After adding a worker, every block either keeps its worker or
        lands on the new one — the cache-affinity contract of elasticity."""
        small = HashRing(nodes=range(2))
        grown = HashRing(nodes=range(3))
        request = [PredictionRequest.of(blocks)]
        before = {
            text: worker_id
            for worker_id, batch in coalesce_requests_by_ring(request, 64, small)
            for text in batch.block_texts
        }
        after = {
            text: worker_id
            for worker_id, batch in coalesce_requests_by_ring(request, 64, grown)
            for text in batch.block_texts
        }
        assert set(before) == set(after)
        for text, owner in after.items():
            assert owner == before[text] or owner == 2

    def test_invalid_arguments(self, blocks):
        request = PredictionRequest.of(blocks[:2])
        with pytest.raises(ValueError):
            coalesce_requests_by_ring([request], 0, HashRing(nodes=(0,)))
        with pytest.raises(ValueError):
            coalesce_requests_by_ring([request], 4, HashRing())


class TestReplicaSets:
    """Invariants of HashRing.owners — the basis of hot-key replication."""

    def test_single_replica_matches_owner(self, keys):
        ring = HashRing(nodes=range(4))
        for key in keys:
            assert ring.owners(key, 1) == [ring.owner(key)]

    def test_replica_sets_are_distinct_and_prefix_closed(self, keys):
        ring = HashRing(nodes=range(5))
        for key in keys:
            three = ring.owners(key, 3)
            assert len(three) == len(set(three)) == 3
            # Growing count only appends: owners(k, n) is a prefix of
            # owners(k, n+1).  This is what bounds replica-set movement.
            assert ring.owners(key, 2) == three[:2]
            assert ring.owners(key, 1) == three[:1]

    def test_count_clamped_to_ring_size(self, keys):
        ring = HashRing(nodes=(0, 1))
        for key in keys[:50]:
            owners = ring.owners(key, 5)
            assert sorted(owners) == [0, 1]

    def test_add_node_displaces_at_most_one_replica(self, keys):
        """Adding a worker may insert itself into a key's replica set; it
        never reshuffles the set beyond that single displacement."""
        before = HashRing(nodes=range(4))
        after = HashRing(nodes=range(5))
        for key in keys:
            old = before.owners(key, 2)
            new = after.owners(key, 2)
            # Every new replica is either an old one or the added node.
            assert set(new) <= set(old) | {4}
            assert len(set(old) - set(new)) <= 1

    def test_remove_node_replaces_only_the_removed_replica(self, keys):
        before = HashRing(nodes=range(5))
        after = HashRing(nodes=range(4))  # node 4 removed
        for key in keys:
            old = before.owners(key, 2)
            new = after.owners(key, 2)
            if 4 not in old:
                assert new == old  # untouched sets do not move at all
            else:
                # The survivor keeps its slot; one successor fills in.
                assert set(old) - {4} <= set(new)

    def test_owners_validation(self):
        ring = HashRing(nodes=(0,))
        with pytest.raises(ValueError):
            ring.owners(1, 0)
        with pytest.raises(LookupError):
            HashRing().owners(1, 1)


class TestHotKeyTracker:
    def test_head_surfaces_after_refresh_interval(self):
        tracker = HotKeyTracker(hot_count=2, min_hits=8, refresh_interval=16)
        for _ in range(40):
            tracker.observe(7)
        for key in range(100, 110):
            tracker.observe(key)
        assert 7 in tracker.hot_keys()
        assert not any(key in tracker.hot_keys() for key in range(100, 110))

    def test_cold_keys_below_min_hits_never_hot(self):
        tracker = HotKeyTracker(hot_count=4, min_hits=16, refresh_interval=8)
        for key in range(64):
            tracker.observe(key)  # one hit each — all below min_hits
        assert tracker.hot_keys() == frozenset()

    def test_capacity_eviction_keeps_tracker_bounded(self):
        tracker = HotKeyTracker(capacity=8, min_hits=1, refresh_interval=4)
        for key in range(1000):
            tracker.observe(key)
        assert len(tracker) <= 8

    def test_decay_cools_formerly_hot_keys(self):
        tracker = HotKeyTracker(
            hot_count=2, min_hits=16, decay_interval=64, refresh_interval=8
        )
        for _ in range(30):
            tracker.observe(1)
        assert 1 in tracker.hot_keys()
        # Drive other traffic across enough decay cycles that key 1's
        # count halves below min_hits (30 -> 15 after one decay).
        for index in range(40):
            tracker.observe(200 + index % 5)
        assert 1 not in tracker.hot_keys()

    def test_watermark_refresh_is_not_starved_by_early_reads(self):
        # The historical bug: an early hot_keys() read right after
        # construction consumed the refresh and pushed the next one a full
        # interval out, hiding the head for ~4x longer than configured.
        tracker = HotKeyTracker(hot_count=1, min_hits=8, refresh_interval=16)
        assert tracker.hot_keys() == frozenset()  # the early read
        for _ in range(20):
            tracker.observe(3)
        assert 3 in tracker.hot_keys()

    def test_validation(self):
        with pytest.raises(ValueError):
            HotKeyTracker(capacity=0)
        with pytest.raises(ValueError):
            HotKeyTracker(hot_count=0)
        with pytest.raises(ValueError):
            HotKeyTracker(min_hits=0)
        with pytest.raises(ValueError):
            HotKeyTracker(decay_interval=0)


class TestHotKeyRouter:
    @pytest.fixture()
    def router(self):
        ring = HashRing(nodes=range(4))
        tracker = HotKeyTracker(hot_count=2, min_hits=8, refresh_interval=8)
        return HotKeyRouter(ring, replicas=2, tracker=tracker)

    def test_cold_keys_route_to_single_owner(self, router, keys):
        for key in keys[:50]:
            assert router.route(key) == router.ring.owner(key)
        assert router.replicated_routes == 0
        assert router.total_routes == 50

    def test_hot_key_round_robins_its_replica_set(self, router):
        hot = 12345
        for _ in range(20):
            router.tracker.observe(hot)
        expected = router.ring.owners(hot, 2)
        routed = [router.route(hot) for _ in range(8)]
        # Strict alternation over the two replicas, starting at cursor 0.
        assert routed == [expected[index % 2] for index in range(8)]
        assert router.replicated_routes == 8

    def test_hot_routes_stay_inside_the_replica_set(self, router):
        hot = 999
        for _ in range(20):
            router.tracker.observe(hot)
        allowed = set(router.ring.owners(hot, 2))
        assert {router.route(hot) for _ in range(16)} <= allowed

    def test_route_text_observes_and_routes(self):
        ring = HashRing(nodes=range(3))
        tracker = HotKeyTracker(hot_count=1, min_hits=8, refresh_interval=8)
        router = HotKeyRouter(ring, replicas=2, tracker=tracker)
        text = "MOV RAX, RBX"
        workers = {router.route_text(text) for _ in range(32)}
        key = shard_key(text)
        assert key in router.hot_keys
        assert workers == set(ring.owners(key, 2))
        assert router.replicated_routes > 0

    def test_single_replica_router_never_replicates(self, keys):
        router = HotKeyRouter(HashRing(nodes=range(3)), replicas=1)
        for key in keys[:100]:
            router.tracker.observe(key)
            assert router.route(key) == router.ring.owner(key)
        assert router.replicated_routes == 0

    def test_follows_live_ring_resizes(self):
        ring = HashRing(nodes=range(2))
        tracker = HotKeyTracker(hot_count=1, min_hits=4, refresh_interval=4)
        router = HotKeyRouter(ring, replicas=2, tracker=tracker)
        hot = 777
        for _ in range(10):
            tracker.observe(hot)
        assert set(ring.owners(hot, 2)) == {0, 1}
        ring.add_node(2)  # in-place mutation, no router rewiring
        allowed = set(ring.owners(hot, 2))
        assert {router.route(hot) for _ in range(8)} <= allowed

    def test_validation(self):
        with pytest.raises(ValueError):
            HotKeyRouter(HashRing(nodes=(0,)), replicas=0)
