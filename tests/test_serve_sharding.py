"""Tests of hash sharding and the elastic, respawning worker pool."""

import time

import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    PoolAutoscaler,
    PredictionRequest,
    PredictionService,
    ServiceConfig,
    coalesce_requests_by_shard,
    shard_key,
)
from repro.testing.equivalence import assert_allclose_for_dtype


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(GeneratorConfig(seed=33)).generate_blocks(32)


def _assert_served_close(service, served, expected):
    """Worker-pool results vs a reference, tolerant of the serving dtype."""
    assert_allclose_for_dtype(served, expected, service.inference_dtype)


class TestShardPartitioning:
    def test_shard_key_is_stable(self, blocks):
        text = blocks[0].canonical_text()
        assert shard_key(text) == shard_key(text)
        assert isinstance(shard_key(text), int)

    def test_partition_covers_every_block_once(self, blocks):
        requests = [
            PredictionRequest.of(blocks[:20]),
            PredictionRequest.of(blocks[20:]),
        ]
        assignments = coalesce_requests_by_shard(
            requests, max_batch_size=8, num_shards=3
        )
        origins = [
            origin for _, batch in assignments for origin in batch.origins
        ]
        assert sorted(origins) == [
            (index, position)
            for index, request in enumerate(requests)
            for position in range(request.num_blocks)
        ]
        assert all(batch.num_blocks <= 8 for _, batch in assignments)

    def test_blocks_routed_by_their_hash(self, blocks):
        assignments = coalesce_requests_by_shard(
            [PredictionRequest.of(blocks)], max_batch_size=8, num_shards=4
        )
        for shard, batch in assignments:
            for text in batch.block_texts:
                assert shard_key(text) % 4 == shard

    def test_same_block_always_same_shard(self, blocks):
        """Routing only depends on the text, not on request composition."""
        solo = coalesce_requests_by_shard(
            [PredictionRequest.of(blocks[:1])], max_batch_size=8, num_shards=4
        )
        mixed = coalesce_requests_by_shard(
            [PredictionRequest.of(list(reversed(blocks)))],
            max_batch_size=8,
            num_shards=4,
        )
        target_text = blocks[0].canonical_text()
        solo_shard = solo[0][0]
        mixed_shards = {
            shard
            for shard, batch in mixed
            if target_text in batch.block_texts
        }
        assert mixed_shards == {solo_shard}

    def test_invalid_arguments(self, blocks):
        request = PredictionRequest.of(blocks[:2])
        with pytest.raises(ValueError):
            coalesce_requests_by_shard([request], max_batch_size=0, num_shards=2)
        with pytest.raises(ValueError):
            coalesce_requests_by_shard([request], max_batch_size=4, num_shards=0)

    def test_unknown_sharding_mode_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(sharding="random")


@pytest.mark.slow
class TestShardedWorkerPool:
    def test_hash_sharding_matches_in_process(self, blocks):
        in_process = PredictionService(
            ServiceConfig(model_name="granite", max_batch_size=5)
        )
        expected = in_process.predict_blocks(blocks)
        config = ServiceConfig(
            model_name="granite", max_batch_size=5, num_workers=2, sharding="hash"
        )
        with PredictionService(config) as sharded:
            served = sharded.predict_blocks(blocks)
        for task in in_process.model.tasks:
            _assert_served_close(in_process, served[task], expected[task])

    def test_round_robin_mode_matches_in_process(self, blocks):
        in_process = PredictionService(
            ServiceConfig(model_name="granite", max_batch_size=5)
        )
        expected = in_process.predict_blocks(blocks)
        config = ServiceConfig(
            model_name="granite",
            max_batch_size=5,
            num_workers=2,
            sharding="round_robin",
        )
        with PredictionService(config) as sharded:
            served = sharded.predict_blocks(blocks)
        for task in in_process.model.tasks:
            _assert_served_close(in_process, served[task], expected[task])

    def test_worker_crash_respawns_mid_stream(self, blocks):
        """Killing a worker between submissions must not lose any request."""
        config = ServiceConfig(model_name="granite", max_batch_size=4, num_workers=2)
        with PredictionService(config) as service:
            first = service.predict_blocks(blocks)
            victim = service._pool._workers[0]
            victim.process.kill()
            victim.process.join()
            assert not victim.alive()
            second = service.predict_blocks(blocks)
            assert service.stats.respawns >= 1
            assert service._pool._workers[0].alive()
        for task in first:
            _assert_served_close(service, second[task], first[task])

    def test_check_health_respawns_out_of_band(self, blocks):
        config = ServiceConfig(model_name="granite", num_workers=2)
        with PredictionService(config) as service:
            assert service.check_health() == 0
            victim = service._pool._workers[1]
            victim.process.kill()
            victim.process.join()
            assert service.check_health() == 1
            assert service.check_health() == 0
            served = service.predict_blocks(blocks[:6])
            assert all(len(values) == 6 for values in served.values())

    def test_worker_stats_report_shard_affinity(self, blocks):
        """Repeated traffic turns into per-worker cache hits under hashing."""
        config = ServiceConfig(model_name="granite", num_workers=2, sharding="hash")
        with PredictionService(config) as service:
            for _ in range(3):
                service.predict_blocks(blocks)
            stats = service._pool.worker_stats()
        assert len(stats) == 2
        for worker_stats in stats:
            # Every worker saw each of its shard's blocks three times: one
            # miss, then hits — so its prediction hit rate lands at ~2/3.
            assert worker_stats["prediction_hit_rate"] >= 0.5
            assert worker_stats["parse_hits"] >= worker_stats["parse_misses"]

    def test_in_process_check_health_is_noop(self):
        service = PredictionService(ServiceConfig(model_name="granite"))
        assert service.check_health() == 0

    def test_worker_stats_carry_ring_topology(self, blocks):
        config = ServiceConfig(model_name="granite", num_workers=2)
        with PredictionService(config) as service:
            service.predict_blocks(blocks[:8])
            stats = service.worker_stats()
        assert [entry["worker_id"] for entry in stats] == [0, 1]
        assert sum(entry["ring_share"] for entry in stats) == pytest.approx(1.0)
        assert all(entry["spawn_count"] >= 1 for entry in stats)

    def test_closed_service_does_not_respawn_pool(self, blocks):
        """Use after close must raise, not silently leak a fresh pool."""
        service = PredictionService(
            ServiceConfig(model_name="granite", num_workers=1)
        ).warm_start()
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError):
            service.predict_blocks(blocks[:2])
        assert service._pool is None


class TestElasticConfig:
    def test_bounds_require_sharded_service(self):
        with pytest.raises(ValueError):
            ServiceConfig(num_workers=0, min_workers=1)
        with pytest.raises(ValueError):
            ServiceConfig(num_workers=0, max_workers=2)

    def test_bounds_must_bracket_num_workers(self):
        with pytest.raises(ValueError):
            ServiceConfig(num_workers=2, max_workers=1)
        with pytest.raises(ValueError):
            ServiceConfig(num_workers=2, min_workers=3)
        with pytest.raises(ValueError):
            ServiceConfig(num_workers=2, min_workers=0, max_workers=4)
        config = ServiceConfig(num_workers=2, min_workers=1, max_workers=4)
        service = PredictionService(config)
        assert service.worker_bounds == (1, 4)
        assert service.autoscaling_enabled

    def test_defaults_disable_autoscaling(self):
        assert not PredictionService(
            ServiceConfig(num_workers=2)
        ).autoscaling_enabled
        assert not PredictionService(ServiceConfig()).autoscaling_enabled

    def test_in_process_service_cannot_scale(self):
        service = PredictionService(ServiceConfig(model_name="granite"))
        with pytest.raises(RuntimeError):
            service.scale_workers(2)
        assert service.num_workers == 0
        assert service.worker_stats() == []


class TestPoolAutoscaler:
    def test_scale_up_on_backlog_with_cooldown(self):
        scaler = PoolAutoscaler(
            1, 3, max_batch_size=8, cooldown_s=1.0, idle_grace_s=0.5
        )
        assert scaler.decide(0, 1, now=0.0) == 1
        # Backlog of two size-flushes per worker triggers a scale-up.
        assert scaler.decide(16, 1, now=0.1) == 2
        # ... but not again within the cooldown, however deep the queue.
        assert scaler.decide(64, 2, now=0.5) == 2
        assert scaler.decide(64, 2, now=1.2) == 3
        # Never above max_workers.
        assert scaler.decide(1000, 3, now=3.0) == 3

    def test_scale_down_after_sustained_idleness(self):
        scaler = PoolAutoscaler(
            1, 3, max_batch_size=8, cooldown_s=0.0, idle_grace_s=0.5
        )
        assert scaler.decide(0, 2, now=0.0) == 2
        assert scaler.decide(0, 2, now=0.3) == 2  # idle, but not long enough
        assert scaler.decide(16, 2, now=0.4) == 2  # busy again: timer resets
        assert scaler.decide(0, 2, now=0.8) == 2
        assert scaler.decide(0, 2, now=1.0) == 1  # idle since 0.4
        assert scaler.decide(0, 1, now=9.0) == 1  # never below min_workers

    def test_out_of_bounds_count_is_clamped(self):
        scaler = PoolAutoscaler(2, 3, max_batch_size=8)
        assert scaler.decide(0, 5, now=0.0) == 3
        assert scaler.decide(0, 1, now=0.1) == 2

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            PoolAutoscaler(0, 2, 8)
        with pytest.raises(ValueError):
            PoolAutoscaler(3, 2, 8)
        with pytest.raises(ValueError):
            PoolAutoscaler(1, 2, 0)


@pytest.mark.slow
class TestElasticScaling:
    def test_scale_round_trip_preserves_predictions(self, blocks):
        """N -> N+1 -> N under the same traffic returns identical answers
        (replicas share weights) and records the resizes."""
        config = ServiceConfig(model_name="granite", max_batch_size=8, num_workers=2)
        with PredictionService(config) as service:
            first = service.predict_blocks(blocks)
            assert service.scale_workers(3) == 1
            assert service.num_workers == 3
            second = service.predict_blocks(blocks)
            assert service.scale_workers(2) == -1
            assert service.num_workers == 2
            third = service.predict_blocks(blocks)
            events = list(service._pool.resize_events)
            stats = service.worker_stats()
        for task in first:
            _assert_served_close(service, second[task], first[task])
            _assert_served_close(service, third[task], first[task])
        assert service.stats.resizes == 2
        assert [event["action"] for event in events] == ["add", "remove"]
        assert [event["worker_id"] for event in events] == [2, 2]
        assert [entry["worker_id"] for entry in stats] == [0, 1]

    def test_scale_to_same_size_is_a_noop(self, blocks):
        config = ServiceConfig(model_name="granite", num_workers=2)
        with PredictionService(config) as service:
            service.predict_blocks(blocks[:4])
            assert service.scale_workers(2) == 0
            assert service.stats.resizes == 0
            assert not service._pool.resize_events

    def test_scale_to_zero_rejected(self, blocks):
        config = ServiceConfig(model_name="granite", num_workers=1)
        with PredictionService(config).warm_start() as service:
            with pytest.raises(ValueError):
                service.scale_workers(0)

    def test_autoscaler_grows_and_shrinks_with_queue_depth(self, blocks):
        """End to end: a backlog grows the pool to max_workers, sustained
        idleness shrinks it back to min_workers — no request lost."""
        config = ServiceConfig(
            model_name="granite",
            max_batch_size=8,
            num_workers=1,
            min_workers=1,
            max_workers=2,
            scale_cooldown_s=0.1,
        )
        async_config = AsyncServiceConfig(
            max_batch_size=8, max_latency_ms=5.0, autoscale_poll_ms=20.0
        )
        # Novel blocks so every flush pays real model compute: the backlog
        # must outlive several autoscaler polls, not vanish into cache hits.
        texts = [
            block.canonical_text()
            for block in BlockGenerator(GeneratorConfig(seed=61)).generate_blocks(800)
        ]
        with AsyncPredictionService(async_config, service_config=config) as front:
            futures = [
                front.submit(PredictionRequest.of(texts[2 * index : 2 * index + 2]))
                for index in range(400)
            ]
            grew = False
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if front.service.num_workers == 2:
                    grew = True
                    break
                time.sleep(0.01)
            for future in futures:
                assert future.result(timeout=120.0).num_blocks == 2
            assert grew, "autoscaler never grew the pool despite the backlog"
            # Queue drained: sustained idleness must shrink the pool again.
            # Poll the resize counter (incremented after the pool resize
            # itself) so the check cannot race the monitor thread.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if front.service.stats.resizes >= 2 and front.service.num_workers == 1:
                    break
                time.sleep(0.05)
            assert front.service.num_workers == 1
            assert front.service.stats.resizes >= 2
            actions = [
                event["action"] for event in front.service._pool.resize_events
            ]
        assert "add" in actions and "remove" in actions
