"""Tests of hash sharding and the respawning worker pool (repro.serve)."""

import numpy as np
import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    PredictionRequest,
    PredictionService,
    ServiceConfig,
    coalesce_requests_by_shard,
    shard_key,
)
from repro.testing.equivalence import assert_allclose_for_dtype


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(GeneratorConfig(seed=33)).generate_blocks(32)


def _assert_served_close(service, served, expected):
    """Worker-pool results vs a reference, tolerant of the serving dtype."""
    assert_allclose_for_dtype(served, expected, service.inference_dtype)


class TestShardPartitioning:
    def test_shard_key_is_stable(self, blocks):
        text = blocks[0].canonical_text()
        assert shard_key(text) == shard_key(text)
        assert isinstance(shard_key(text), int)

    def test_partition_covers_every_block_once(self, blocks):
        requests = [
            PredictionRequest.of(blocks[:20]),
            PredictionRequest.of(blocks[20:]),
        ]
        assignments = coalesce_requests_by_shard(
            requests, max_batch_size=8, num_shards=3
        )
        origins = [
            origin for _, batch in assignments for origin in batch.origins
        ]
        assert sorted(origins) == [
            (index, position)
            for index, request in enumerate(requests)
            for position in range(request.num_blocks)
        ]
        assert all(batch.num_blocks <= 8 for _, batch in assignments)

    def test_blocks_routed_by_their_hash(self, blocks):
        assignments = coalesce_requests_by_shard(
            [PredictionRequest.of(blocks)], max_batch_size=8, num_shards=4
        )
        for shard, batch in assignments:
            for text in batch.block_texts:
                assert shard_key(text) % 4 == shard

    def test_same_block_always_same_shard(self, blocks):
        """Routing only depends on the text, not on request composition."""
        solo = coalesce_requests_by_shard(
            [PredictionRequest.of(blocks[:1])], max_batch_size=8, num_shards=4
        )
        mixed = coalesce_requests_by_shard(
            [PredictionRequest.of(list(reversed(blocks)))],
            max_batch_size=8,
            num_shards=4,
        )
        target_text = blocks[0].canonical_text()
        solo_shard = solo[0][0]
        mixed_shards = {
            shard
            for shard, batch in mixed
            if target_text in batch.block_texts
        }
        assert mixed_shards == {solo_shard}

    def test_invalid_arguments(self, blocks):
        request = PredictionRequest.of(blocks[:2])
        with pytest.raises(ValueError):
            coalesce_requests_by_shard([request], max_batch_size=0, num_shards=2)
        with pytest.raises(ValueError):
            coalesce_requests_by_shard([request], max_batch_size=4, num_shards=0)

    def test_unknown_sharding_mode_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(sharding="random")


@pytest.mark.slow
class TestShardedWorkerPool:
    def test_hash_sharding_matches_in_process(self, blocks):
        in_process = PredictionService(
            ServiceConfig(model_name="granite", max_batch_size=5)
        )
        expected = in_process.predict_blocks(blocks)
        config = ServiceConfig(
            model_name="granite", max_batch_size=5, num_workers=2, sharding="hash"
        )
        with PredictionService(config) as sharded:
            served = sharded.predict_blocks(blocks)
        for task in in_process.model.tasks:
            _assert_served_close(in_process, served[task], expected[task])

    def test_round_robin_mode_matches_in_process(self, blocks):
        in_process = PredictionService(
            ServiceConfig(model_name="granite", max_batch_size=5)
        )
        expected = in_process.predict_blocks(blocks)
        config = ServiceConfig(
            model_name="granite",
            max_batch_size=5,
            num_workers=2,
            sharding="round_robin",
        )
        with PredictionService(config) as sharded:
            served = sharded.predict_blocks(blocks)
        for task in in_process.model.tasks:
            _assert_served_close(in_process, served[task], expected[task])

    def test_worker_crash_respawns_mid_stream(self, blocks):
        """Killing a worker between submissions must not lose any request."""
        config = ServiceConfig(model_name="granite", max_batch_size=4, num_workers=2)
        with PredictionService(config) as service:
            first = service.predict_blocks(blocks)
            victim = service._pool._workers[0]
            victim.process.kill()
            victim.process.join()
            assert not victim.alive()
            second = service.predict_blocks(blocks)
            assert service.stats.respawns >= 1
            assert service._pool._workers[0].alive()
        for task in first:
            _assert_served_close(service, second[task], first[task])

    def test_check_health_respawns_out_of_band(self, blocks):
        config = ServiceConfig(model_name="granite", num_workers=2)
        with PredictionService(config) as service:
            assert service.check_health() == 0
            victim = service._pool._workers[1]
            victim.process.kill()
            victim.process.join()
            assert service.check_health() == 1
            assert service.check_health() == 0
            served = service.predict_blocks(blocks[:6])
            assert all(len(values) == 6 for values in served.values())

    def test_worker_stats_report_shard_affinity(self, blocks):
        """Repeated traffic turns into per-worker cache hits under hashing."""
        config = ServiceConfig(model_name="granite", num_workers=2, sharding="hash")
        with PredictionService(config) as service:
            for _ in range(3):
                service.predict_blocks(blocks)
            stats = service._pool.worker_stats()
        assert len(stats) == 2
        for worker_stats in stats:
            # Every worker saw each of its shard's blocks three times: one
            # miss, then hits — so its prediction hit rate lands at ~2/3.
            assert worker_stats["prediction_hit_rate"] >= 0.5
            assert worker_stats["parse_hits"] >= worker_stats["parse_misses"]

    def test_in_process_check_health_is_noop(self):
        service = PredictionService(ServiceConfig(model_name="granite"))
        assert service.check_health() == 0

    def test_closed_service_does_not_respawn_pool(self, blocks):
        """Use after close must raise, not silently leak a fresh pool."""
        service = PredictionService(
            ServiceConfig(model_name="granite", num_workers=1)
        ).warm_start()
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError):
            service.predict_blocks(blocks[:2])
        assert service._pool is None
