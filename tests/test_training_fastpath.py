"""Equivalence tests for the vectorized training fast path.

The fused tape (``use_fused_ops``, on by default) must train exactly like
the composed tape it replaces: same-seed runs see the same batches, the
fused forwards are arithmetic-identical, and the flat-slab Adam update is
element-for-element the per-parameter loop.  These tests pin that down at
unit scale; ``benchmarks/test_training_throughput.py`` additionally gates
the speedup and the full loss trajectories.
"""

import numpy as np
import pytest

from repro.data.datasets import LabeledBlock, ThroughputDataset
from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.nn.layers import Dense
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, use_fused_ops
from repro.training.trainer import Trainer


@pytest.fixture(scope="module")
def train_split(tiny_dataset):
    return tiny_dataset.paper_splits(seed=0).train


def _losses(name, train_split, fused, steps=4):
    model = create_model(name, small=True, seed=13)
    trainer = Trainer(model, TrainingConfig(batch_size=12, num_steps=steps, seed=3))
    with use_fused_ops(fused):
        history = trainer.train(train_split)
    return history.loss_curve(), model


class TestFusedTrainingEquivalence:
    @pytest.mark.parametrize("name", ["granite", "ithemal+", "ithemal"])
    def test_loss_trajectory_matches_composed_tape(self, name, train_split):
        fused_losses, fused_model = _losses(name, train_split, fused=True)
        composed_losses, composed_model = _losses(name, train_split, fused=False)
        np.testing.assert_allclose(fused_losses, composed_losses, rtol=1e-9)
        # The trained weights agree too (backwards may reorder float sums,
        # so allow a few ulps rather than bit equality).
        fused_state = fused_model.state_dict()
        composed_state = composed_model.state_dict()
        for key, fused_value in fused_state.items():
            np.testing.assert_allclose(
                fused_value, composed_state[key], rtol=1e-9, atol=1e-12, err_msg=key
            )

    def test_history_records_throughput(self, train_split):
        _, model = _losses("ithemal", train_split, fused=True, steps=2)
        trainer = Trainer(model, TrainingConfig(batch_size=8, num_steps=2, seed=3))
        history = trainer.train(train_split)
        assert history.steps_per_second > 0.0

    def test_partially_labelled_sample_errors_only_when_drawn(self, tiny_dataset):
        # CSV-imported datasets may lack labels for some samples; the
        # precomputed label arrays must preserve the per-sample semantics:
        # an unlabeled sample is only an error once it is actually drawn.
        samples = [
            LabeledBlock(block=sample.block, throughputs=dict(sample.throughputs))
            for sample in tiny_dataset.samples[:6]
        ]
        task = "haswell"
        del samples[0].throughputs[task]
        dataset = ThroughputDataset(samples, microarchitectures=(task,))
        model = create_model("ithemal", small=True, seed=13, tasks=[task])
        trainer = Trainer(model, TrainingConfig(batch_size=6, num_steps=1, seed=3))
        with pytest.raises(KeyError, match=task):
            trainer.train_step(dataset, step=1)
        # A batch that avoids the unlabeled sample trains fine.
        labelled = ThroughputDataset(samples[1:], microarchitectures=(task,))
        result = trainer.train_step(labelled, step=1)
        assert np.isfinite(result.loss)

    def test_batch_source_cache_is_per_dataset(self, tiny_dataset):
        splits = tiny_dataset.paper_splits(seed=0)
        model = create_model("ithemal", small=True, seed=13)
        trainer = Trainer(model, TrainingConfig(batch_size=4, num_steps=1, seed=3))
        trainer.train_step(splits.train, step=1)
        trainer.train_step(splits.validation, step=2)
        blocks, labels = trainer._batch_source(splits.train)
        assert len(blocks) == len(splits.train)
        for task in model.tasks:
            np.testing.assert_array_equal(labels[task], splits.train.throughputs(task))

    def test_batch_source_cache_is_bounded(self, tiny_dataset):
        model = create_model("ithemal", small=True, seed=13)
        trainer = Trainer(model, TrainingConfig(batch_size=2, num_steps=1, seed=3))
        subsets = [tiny_dataset.subset(range(start, start + 4)) for start in range(8)]
        for subset in subsets:
            trainer._batch_source(subset)
        assert len(trainer._batch_sources) <= trainer._batch_sources_capacity


class TestFlatAdamEquivalence:
    def _make_pair(self, rng):
        layer_a = Dense(3, 2, rng)
        state = layer_a.state_dict()
        layer_b = Dense(3, 2, np.random.default_rng(0))
        layer_b.load_state_dict(state)
        return layer_a, layer_b

    def test_flat_update_is_bit_identical_to_loop(self, rng):
        layer_flat, layer_loop = self._make_pair(rng)
        adam_flat = Adam(layer_flat.parameters(), learning_rate=0.05)
        adam_loop = Adam(layer_loop.parameters(), learning_rate=0.05)
        inputs = rng.normal(size=(16, 3))
        targets = rng.normal(size=(16, 2))
        for _ in range(5):
            for layer, adam, fused in (
                (layer_flat, adam_flat, True),
                (layer_loop, adam_loop, False),
            ):
                with use_fused_ops(fused):
                    layer.zero_grad()
                    difference = layer(Tensor(inputs)) - Tensor(targets)
                    (difference * difference).mean().backward()
                    adam.step()
        np.testing.assert_array_equal(layer_flat.weight.data, layer_loop.weight.data)
        np.testing.assert_array_equal(layer_flat.bias.data, layer_loop.bias.data)

    def test_flat_path_skipped_when_a_gradient_is_missing(self, rng):
        used = Dense(2, 2, rng)
        unused = Dense(2, 2, rng)
        adam = Adam(used.parameters() + unused.parameters(), learning_rate=0.1)
        before = unused.weight.data.copy()
        used.zero_grad()
        (used(Tensor(rng.normal(size=(4, 2)))) ** 2.0).sum().backward()
        adam.step()
        # Parameters without gradients are untouched — and their moments did
        # not decay, which the flat path cannot express.
        np.testing.assert_array_equal(unused.weight.data, before)
        assert not np.any(used.weight.grad is None)

    def test_moment_views_share_flat_slabs(self, rng):
        layer = Dense(2, 3, rng)
        adam = Adam(layer.parameters())
        total = sum(parameter.size for parameter in adam.parameters)
        assert adam._flat_first.shape == (total,)
        for view in adam._first_moment:
            assert view.base is adam._flat_first
