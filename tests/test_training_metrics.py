"""Tests for evaluation metrics (repro.training.metrics)."""

import numpy as np
import pytest

from repro.training.metrics import (
    compute_metrics,
    mape,
    pearson_correlation,
    prediction_heatmap,
    relative_error_histogram,
    spearman_correlation,
    underestimation_fraction,
)


class TestMape:
    def test_perfect_prediction(self):
        actual = np.array([100.0, 200.0, 300.0])
        assert mape(actual, actual) == pytest.approx(0.0)

    def test_known_value(self):
        assert mape(np.array([90.0, 110.0]), np.array([100.0, 100.0])) == pytest.approx(0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mape(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mape(np.zeros(0), np.zeros(0))

    def test_zero_targets_excluded(self):
        """A zero-throughput target must not poison the mean (Table 5/6)."""
        predicted = np.array([90.0, 123456.0, 110.0])
        actual = np.array([100.0, 0.0, 100.0])
        assert mape(predicted, actual) == pytest.approx(0.1)

    def test_all_zero_targets_finite(self):
        assert mape(np.array([5.0, -3.0]), np.zeros(2)) == 0.0

    def test_relative_error_histogram_ignores_zero_targets(self):
        counts, _ = relative_error_histogram(
            np.array([90.0, 1e9, 110.0]), np.array([100.0, 0.0, 100.0])
        )
        assert counts.sum() == 2


class TestCorrelations:
    def test_perfect_rank_correlation(self):
        actual = np.array([1.0, 2.0, 3.0, 4.0])
        predicted = np.array([10.0, 20.0, 30.0, 40.0])
        assert spearman_correlation(predicted, actual) == pytest.approx(1.0)

    def test_monotone_but_nonlinear_has_high_spearman_lower_pearson(self):
        actual = np.linspace(1.0, 10.0, 50)
        predicted = np.exp(actual)
        assert spearman_correlation(predicted, actual) == pytest.approx(1.0)
        assert pearson_correlation(predicted, actual) < 0.95

    def test_anticorrelation(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([3.0, 2.0, 1.0])
        assert spearman_correlation(predicted, actual) == pytest.approx(-1.0)
        assert pearson_correlation(predicted, actual) == pytest.approx(-1.0)

    def test_constant_predictions_return_zero(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([5.0, 5.0, 5.0])
        assert spearman_correlation(predicted, actual) == 0.0
        assert pearson_correlation(predicted, actual) == 0.0

    def test_compute_metrics_bundle(self):
        actual = np.array([100.0, 200.0, 300.0, 400.0])
        predicted = actual * 1.1
        metrics = compute_metrics(predicted, actual)
        assert metrics.mape == pytest.approx(0.1)
        assert metrics.spearman == pytest.approx(1.0)
        assert metrics.pearson == pytest.approx(1.0)
        assert metrics.num_samples == 4
        assert "MAPE" in metrics.format_row()


class TestHeatmap:
    def test_diagonal_predictions_land_on_diagonal(self):
        actual = np.linspace(100.0, 900.0, 200)
        histogram, x_edges, y_edges = prediction_heatmap(
            actual, actual, max_cycles=10.0, num_bins=10, normalization=100.0
        )
        assert histogram.sum() == 200
        off_diagonal = histogram.copy()
        np.fill_diagonal(off_diagonal, 0.0)
        assert off_diagonal.sum() == 0

    def test_values_above_max_cycles_are_cropped(self):
        actual = np.array([500.0, 5000.0])
        predicted = np.array([500.0, 5000.0])
        histogram, _, _ = prediction_heatmap(
            predicted, actual, max_cycles=10.0, normalization=100.0
        )
        assert histogram.sum() == 1

    def test_bin_count(self):
        histogram, x_edges, y_edges = prediction_heatmap(
            np.array([1.0]), np.array([1.0]), num_bins=25
        )
        assert histogram.shape == (25, 25)
        assert len(x_edges) == 26


class TestErrorHistogram:
    def test_centered_for_unbiased_predictions(self, rng):
        actual = rng.uniform(100, 1000, size=2000)
        noise = rng.normal(0, 0.05, size=2000)
        predicted = actual * (1 + noise)
        counts, edges = relative_error_histogram(predicted, actual)
        centers = (edges[:-1] + edges[1:]) / 2
        mean_error = np.average(centers, weights=counts)
        assert abs(mean_error) < 0.02

    def test_underestimation_shifts_mass_left(self, rng):
        actual = rng.uniform(100, 1000, size=500)
        predicted = actual * 0.7
        counts, edges = relative_error_histogram(predicted, actual)
        centers = (edges[:-1] + edges[1:]) / 2
        assert np.average(centers, weights=counts) < -0.2

    def test_errors_are_clipped_to_limit(self):
        counts, edges = relative_error_histogram(
            np.array([1000.0]), np.array([10.0]), limit=1.5
        )
        assert counts.sum() == 1
        assert edges[0] == pytest.approx(-1.5)
        assert edges[-1] == pytest.approx(1.5)


class TestUnderestimation:
    def test_balanced_predictions(self):
        actual = np.array([100.0, 100.0])
        predicted = np.array([90.0, 110.0])
        assert underestimation_fraction(predicted, actual) == pytest.approx(0.5)

    def test_systematic_underestimation(self):
        actual = np.full(10, 100.0)
        predicted = np.full(10, 80.0)
        assert underestimation_fraction(predicted, actual) == pytest.approx(1.0)
