"""Tests for the training loop (repro.training.trainer)."""

import numpy as np
import pytest

from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.training.trainer import Trainer, evaluate_model


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    # tiny_dataset is session-scoped; splitting is deterministic.
    return tiny_dataset.paper_splits(seed=0)


class TestEvaluateModel:
    def test_metrics_for_every_task(self, tiny_dataset):
        model = create_model("granite", small=True, seed=0)
        metrics = evaluate_model(model, tiny_dataset)
        assert set(metrics) == set(model.tasks)
        for metric in metrics.values():
            assert metric.num_samples == len(tiny_dataset)
            assert np.isfinite(metric.mape)

    def test_batched_evaluation_matches_single_batch(self, tiny_dataset):
        model = create_model("granite", small=True, seed=0)
        small_batches = evaluate_model(model, tiny_dataset, batch_size=7)
        one_batch = evaluate_model(model, tiny_dataset, batch_size=1000)
        for task in model.tasks:
            assert small_batches[task].mape == pytest.approx(one_batch[task].mape, rel=1e-9)

    def test_empty_dataset_rejected(self, tiny_dataset):
        model = create_model("granite", small=True, seed=0)
        with pytest.raises(ValueError):
            evaluate_model(model, tiny_dataset.subset([])[:0] if False else tiny_dataset.subset([]))


class TestTrainer:
    def test_training_reduces_loss(self, splits):
        model = create_model("granite", small=True, seed=1)
        trainer = Trainer(model, TrainingConfig(num_steps=25, batch_size=16, validation_interval=100, seed=0))
        history = trainer.train(splits.train)
        losses = history.loss_curve()
        assert len(losses) == 25
        assert losses[-5:].mean() < losses[:5].mean()

    def test_single_step_returns_finite_loss(self, splits):
        model = create_model("ithemal+", small=True, seed=1)
        trainer = Trainer(model, TrainingConfig(batch_size=8, seed=0))
        result = trainer.train_step(splits.train, step=1)
        assert np.isfinite(result.loss)
        assert result.seconds > 0

    def test_validation_selects_best_checkpoint(self, splits):
        model = create_model("granite", small=True, seed=2)
        trainer = Trainer(
            model,
            TrainingConfig(num_steps=20, batch_size=16, validation_interval=5, seed=0),
        )
        history = trainer.train(splits.train, splits.validation)
        assert history.best_step > 0
        assert history.best_validation_mape < float("inf")
        assert len(history.validation_mape) >= 3
        # The restored parameters correspond to the best recorded validation
        # MAPE, which must be <= the last recorded one.
        assert history.best_validation_mape <= history.validation_mape[-1][1] + 1e-12

    def test_gradient_clipping_is_applied(self, splits):
        model = create_model("granite", small=True, seed=3)
        trainer = Trainer(
            model,
            TrainingConfig(num_steps=3, batch_size=8, gradient_clip_norm=0.5, seed=0),
        )
        result = trainer.train_step(splits.train, step=1)
        assert np.isfinite(result.gradient_norm)

    def test_without_clipping_norm_is_nan(self, splits):
        model = create_model("granite", small=True, seed=3)
        trainer = Trainer(model, TrainingConfig(num_steps=3, batch_size=8, seed=0))
        result = trainer.train_step(splits.train, step=1)
        assert np.isnan(result.gradient_norm)

    def test_empty_training_set_rejected(self, splits):
        model = create_model("granite", small=True, seed=0)
        trainer = Trainer(model, TrainingConfig(num_steps=1))
        with pytest.raises(ValueError):
            trainer.train(splits.train.subset([]))

    def test_multi_task_training_updates_all_heads(self, splits):
        model = create_model("granite", small=True, seed=4)
        before = {task: decoder.mlp.layers[0].weight.data.copy()
                  for task, decoder in model.decoders.items()}
        trainer = Trainer(model, TrainingConfig(num_steps=3, batch_size=8, seed=0))
        trainer.train(splits.train)
        for task, decoder in model.decoders.items():
            assert not np.allclose(before[task], decoder.mlp.layers[0].weight.data)

    def test_unknown_loss_rejected(self, splits):
        model = create_model("granite", small=True, seed=0)
        with pytest.raises(KeyError):
            Trainer(model, TrainingConfig(loss="nll"))

    def test_history_divergence_detector(self, splits):
        model = create_model("granite", small=True, seed=5)
        trainer = Trainer(model, TrainingConfig(num_steps=5, batch_size=8, seed=0))
        history = trainer.train(splits.train)
        assert not history.diverged()
