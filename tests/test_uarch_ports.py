"""Tests for the microarchitecture models (repro.uarch.ports)."""

import pytest

from repro.isa.parser import parse_instruction
from repro.uarch.ports import (
    HASWELL,
    IVY_BRIDGE,
    MICROARCHITECTURES,
    SKYLAKE,
    get_microarchitecture,
)


class TestMicroarchitectureRegistry:
    def test_three_targets_available(self):
        assert set(MICROARCHITECTURES) == {"ivy_bridge", "haswell", "skylake"}

    def test_lookup_by_key_and_display_name(self):
        assert get_microarchitecture("haswell") is HASWELL
        assert get_microarchitecture("Ivy Bridge") is IVY_BRIDGE
        assert get_microarchitecture("SKYLAKE") is SKYLAKE

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_microarchitecture("zen3")

    def test_display_names(self):
        assert IVY_BRIDGE.name == "Ivy Bridge"
        assert HASWELL.name == "Haswell"
        assert SKYLAKE.name == "Skylake"


class TestPortModels:
    def test_ivy_bridge_has_three_alu_ports(self):
        assert len(IVY_BRIDGE.port_model.alu_ports) == 3
        assert len(IVY_BRIDGE.port_model.ports) == 6

    def test_haswell_and_skylake_have_four_alu_ports(self):
        for uarch in (HASWELL, SKYLAKE):
            assert len(uarch.port_model.alu_ports) == 4
            assert len(uarch.port_model.ports) == 8

    def test_store_data_port_is_dedicated(self):
        for uarch in (IVY_BRIDGE, HASWELL, SKYLAKE):
            assert len(uarch.port_model.store_data_ports) == 1

    def test_microarchitectures_differ_in_latencies(self):
        # Skylake's divider and FP units improved over the older cores.
        assert SKYLAKE.divide_inverse_throughput < HASWELL.divide_inverse_throughput
        assert HASWELL.divide_inverse_throughput < IVY_BRIDGE.divide_inverse_throughput
        assert SKYLAKE.fp_multiply_latency < IVY_BRIDGE.fp_multiply_latency


class TestInstructionCosts:
    def test_simple_alu_is_single_micro_op(self):
        cost = HASWELL.cost_of(parse_instruction("ADD RAX, RBX"))
        assert cost.num_micro_ops == 1
        assert cost.latency == pytest.approx(1.0)

    def test_nop_is_free(self):
        cost = HASWELL.cost_of(parse_instruction("NOP"))
        assert cost.num_micro_ops == 0
        assert cost.latency == pytest.approx(0.0)

    def test_divide_is_expensive_and_blocking(self):
        cost = IVY_BRIDGE.cost_of(parse_instruction("IDIV RCX"))
        assert cost.latency >= 20.0
        assert cost.num_micro_ops >= 10

    def test_divide_cheaper_on_skylake(self):
        ivb = IVY_BRIDGE.cost_of(parse_instruction("DIVSD XMM0, XMM1"))
        skl = SKYLAKE.cost_of(parse_instruction("DIVSD XMM0, XMM1"))
        assert skl.latency < ivb.latency
        assert skl.num_micro_ops < ivb.num_micro_ops

    def test_multiply_latency(self):
        cost = HASWELL.cost_of(parse_instruction("IMUL RAX, RBX"))
        assert cost.latency == pytest.approx(HASWELL.multiply_latency)

    def test_complex_lea_has_higher_latency(self):
        simple = HASWELL.cost_of(parse_instruction("LEA RAX, [RBX + 8]"))
        complex_lea = HASWELL.cost_of(parse_instruction("LEA RAX, [RBX + RCX*4 + 8]"))
        assert complex_lea.latency > simple.latency

    def test_fp_add_latency_per_uarch(self):
        for uarch in (IVY_BRIDGE, HASWELL, SKYLAKE):
            cost = uarch.cost_of(parse_instruction("ADDSD XMM0, XMM1"))
            assert cost.latency == pytest.approx(uarch.fp_add_latency)

    def test_unknown_mnemonic_gets_generic_cost(self):
        cost = HASWELL.cost_of(parse_instruction("FROBNICATE RAX, RBX"))
        assert cost.num_micro_ops == 1

    def test_micro_ops_reference_existing_ports(self):
        for uarch in (IVY_BRIDGE, HASWELL, SKYLAKE):
            for text in ("ADD RAX, RBX", "IMUL RAX, RBX", "DIVSD XMM0, XMM1",
                         "MULSD XMM2, XMM3", "JNE .L1", "SHL RAX, 3"):
                cost = uarch.cost_of(parse_instruction(text))
                for micro_op in cost.micro_ops:
                    assert micro_op.ports <= set(uarch.port_model.ports)


class TestPrefixPenalties:
    def test_lock_prefix_penalty(self):
        instruction = parse_instruction("LOCK ADD QWORD PTR [RAX], RBX")
        assert HASWELL.prefix_penalty(instruction) == pytest.approx(HASWELL.lock_penalty)

    def test_rep_prefix_penalty(self):
        instruction = parse_instruction("REP STOSQ")
        assert SKYLAKE.prefix_penalty(instruction) > 0.0

    def test_no_prefix_no_penalty(self):
        assert HASWELL.prefix_penalty(parse_instruction("ADD RAX, RBX")) == 0.0
