"""Tests for the analytical throughput oracle (repro.uarch.scheduler)."""

import pytest

from repro.isa.basic_block import BasicBlock
from repro.uarch.ports import HASWELL, IVY_BRIDGE, SKYLAKE
from repro.uarch.scheduler import ThroughputOracle


@pytest.fixture(scope="module")
def haswell_oracle():
    return ThroughputOracle(HASWELL)


class TestBasicProperties:
    def test_empty_block_has_small_positive_cost(self, haswell_oracle):
        assert 0.0 < haswell_oracle.throughput(BasicBlock([])) < 1.0

    def test_throughput_is_positive_and_finite(self, haswell_oracle, sample_blocks):
        for block in sample_blocks:
            value = haswell_oracle.throughput(block)
            assert value > 0.0
            assert value < 10_000.0

    def test_breakdown_is_consistent_with_throughput(self, haswell_oracle, paper_example_block):
        breakdown = haswell_oracle.breakdown(paper_example_block)
        assert breakdown.cycles_per_iteration == pytest.approx(
            max(
                breakdown.port_pressure_bound,
                breakdown.frontend_bound,
                breakdown.latency_bound,
            )
            + breakdown.serialization_penalty,
            abs=0.31,
        )

    def test_deterministic(self, haswell_oracle, paper_example_block):
        assert haswell_oracle.throughput(paper_example_block) == haswell_oracle.throughput(
            paper_example_block
        )


class TestBounds:
    def test_independent_alu_block_is_port_or_frontend_bound(self, haswell_oracle):
        block = BasicBlock.from_text(
            "MOV RAX, 1\nMOV RBX, 2\nMOV RCX, 3\nMOV RDX, 4\nMOV RSI, 5\nMOV RDI, 6\nMOV R8, 7\nMOV R9, 8"
        )
        breakdown = haswell_oracle.breakdown(block)
        assert breakdown.latency_bound <= breakdown.cycles_per_iteration
        # 8 single-µop moves on a 4-wide machine need at least 2 cycles.
        assert breakdown.cycles_per_iteration >= 2.0

    def test_dependency_chain_is_latency_bound(self, haswell_oracle):
        block = BasicBlock.from_text(
            "\n".join(["MULSD XMM0, XMM1"] * 6)
        )
        breakdown = haswell_oracle.breakdown(block)
        assert breakdown.latency_bound > breakdown.port_pressure_bound
        assert breakdown.cycles_per_iteration >= 6 * HASWELL.fp_multiply_latency - 1e-6

    def test_independent_multiplies_are_throughput_bound(self, haswell_oracle):
        block = BasicBlock.from_text(
            "MULSD XMM0, XMM8\nMULSD XMM1, XMM9\nMULSD XMM2, XMM10\nMULSD XMM3, XMM11"
        )
        breakdown = haswell_oracle.breakdown(block)
        # Independent multiplies pipeline: far below 4 * latency.
        assert breakdown.cycles_per_iteration < 4 * HASWELL.fp_multiply_latency

    def test_divides_serialise_on_the_divider_port(self, haswell_oracle):
        one = haswell_oracle.throughput(BasicBlock.from_text("IDIV RCX"))
        two = haswell_oracle.throughput(BasicBlock.from_text("IDIV RCX\nIDIV RSI"))
        assert two > one * 1.5

    def test_store_load_adds_memory_micro_ops(self, haswell_oracle):
        register_block = BasicBlock.from_text("ADD RAX, RBX")
        memory_block = BasicBlock.from_text("ADD QWORD PTR [RCX], RBX")
        register_ops = haswell_oracle.breakdown(register_block).num_micro_ops
        memory_ops = haswell_oracle.breakdown(memory_block).num_micro_ops
        assert memory_ops >= register_ops + 2

    def test_lock_prefix_increases_cost(self, haswell_oracle):
        plain = haswell_oracle.throughput(BasicBlock.from_text("ADD QWORD PTR [RAX], RBX"))
        locked = haswell_oracle.throughput(BasicBlock.from_text("LOCK ADD QWORD PTR [RAX], RBX"))
        assert locked >= plain + HASWELL.lock_penalty * 0.9

    def test_more_instructions_never_cheaper(self, haswell_oracle):
        short = BasicBlock.from_text("ADD RAX, RBX\nADD RCX, RDX")
        longer = BasicBlock.from_text("ADD RAX, RBX\nADD RCX, RDX\nADD RSI, RDI\nADD R8, R9")
        assert haswell_oracle.throughput(longer) >= haswell_oracle.throughput(short)


class TestMicroarchitectureDifferences:
    def test_alu_heavy_block_faster_on_wider_machines(self):
        block = BasicBlock.from_text(
            "\n".join(f"ADD R{index}, R{index + 1}" for index in range(8, 14))
        )
        ivb = ThroughputOracle(IVY_BRIDGE).throughput(block)
        hsw = ThroughputOracle(HASWELL).throughput(block)
        assert hsw <= ivb

    def test_divide_block_fastest_on_skylake(self):
        block = BasicBlock.from_text("DIVSD XMM0, XMM1\nDIVSD XMM2, XMM3")
        values = {
            "ivb": ThroughputOracle(IVY_BRIDGE).throughput(block),
            "hsw": ThroughputOracle(HASWELL).throughput(block),
            "skl": ThroughputOracle(SKYLAKE).throughput(block),
        }
        assert values["skl"] < values["hsw"] <= values["ivb"]

    def test_microarchitectures_correlate_but_differ(self, sample_blocks):
        """Labels across microarchitectures are similar but not identical —
        the structure multi-task learning exploits."""
        import numpy as np

        ivb = np.array([ThroughputOracle(IVY_BRIDGE).throughput(b) for b in sample_blocks])
        skl = np.array([ThroughputOracle(SKYLAKE).throughput(b) for b in sample_blocks])
        correlation = np.corrcoef(ivb, skl)[0, 1]
        assert correlation > 0.85
        assert not np.allclose(ivb, skl)

    def test_paper_example_block_costs_are_plausible(self, paper_example_block):
        for uarch in (IVY_BRIDGE, HASWELL, SKYLAKE):
            cycles = ThroughputOracle(uarch).throughput(paper_example_block)
            # 8 mostly-independent simple instructions: 2-6 cycles per iteration.
            assert 1.5 <= cycles <= 8.0
